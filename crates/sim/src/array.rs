//! Per-array cycle simulation, one steppable machine per tile mode.
//!
//! Each array advances one clock cycle per [`ArraySim::tick`] call:
//! NFA/LNFA arrays consume one input byte every cycle, while an NBVA array
//! that entered the bit-vector-processing phase spends the following
//! `depth` cycles stalled (reporting [`ArraySim::stalled`]) before it
//! accepts the next byte. Energy is charged per micro-operation against
//! the circuit models; activity factors (active states per tile,
//! cross-tile signals) come from the configuration *entering* each cycle,
//! which is what toggles the switch fabric during that cycle's state
//! transition.
//!
//! The [`run_array`] wrapper drives a machine over a whole input slice
//! (used by the batch `simulate` entry point); the bank-level streaming
//! simulation in [`crate::bank`] interleaves several machines cycle by
//! cycle through the §3.3 buffer hierarchy.

use crate::cost::CostModel;
use crate::result::MatchEvent;
use rap_circuit::energy::Category;
use rap_circuit::{EnergyMeter, Machine};
use rap_compiler::{Compiled, CompiledLnfa, CompiledNbva, CompiledNfa, MatchPath};
use rap_mapper::{ArrayKind, ArrayPlan, Bin, Placement};
use rap_telemetry::{ProbeEvent, SimProbe};

/// What one array produced: its private cycle count (stalls included), its
/// match reports, and the tile-cycles that were actually powered (gated
/// tiles leak ~nothing, which is where LNFA mode's §3.2 savings and the
/// NBVA phase's §3.3 tile-disabling come from).
pub(crate) struct ArrayOutcome {
    pub cycles: u64,
    pub matches: Vec<MatchEvent>,
    pub powered_tile_cycles: u64,
}

/// A point-in-time activity sample of one array, as seen by a telemetry
/// probe (see [`ArraySim::observe`]).
#[derive(Clone, Copy, Debug)]
pub(crate) struct ArrayObservation {
    /// Automaton states currently active across the array's machines.
    pub active_states: u64,
    /// Tiles that will draw power on the next cycle (gated tiles excluded).
    pub powered_tiles: u64,
}

/// A cycle-steppable array.
pub(crate) trait ArraySim {
    /// Whether the next cycle is a stall cycle (the array will not accept
    /// an input byte).
    fn stalled(&self) -> bool;

    /// Advances one clock cycle. When not stalled, `byte` must be the next
    /// input symbol and `offset` its 0-based position; matches ending this
    /// cycle are appended to `out`. When stalled, `byte` is ignored.
    fn tick(
        &mut self,
        byte: Option<u8>,
        offset: usize,
        meter: &mut EnergyMeter,
        out: &mut Vec<MatchEvent>,
    );

    /// Tile-cycles powered so far.
    fn powered_tile_cycles(&self) -> u64;

    /// Samples the array's current activity for a telemetry probe. Pure
    /// observation: never charges energy or mutates state.
    fn observe(&self) -> ArrayObservation;
}

/// Builds the steppable machine for an array plan.
pub(crate) fn build_array<'a>(
    compiled: &'a [Compiled],
    plan: &'a ArrayPlan,
    cost: &CostModel,
) -> Box<dyn ArraySim + 'a> {
    match &plan.kind {
        ArrayKind::Nfa { placements } => Box::new(NfaArray::new(compiled, placements, plan, *cost)),
        ArrayKind::Nbva { depth, placements } => {
            Box::new(NbvaArray::new(compiled, placements, plan, *depth, *cost))
        }
        ArrayKind::Lnfa { bins } => Box::new(LnfaArray::new(compiled, bins, plan, *cost)),
    }
}

/// Drives one array over a whole input slice (stalls expanded in place).
///
/// When a telemetry probe is attached (as `(probe, array index)`), the
/// loop emits an [`ProbeEvent::Array`] sample every
/// [`SimProbe::sample_every`] cycles and one [`ProbeEvent::ArrayEnd`]
/// summary at the end. Probing only observes — energy, cycles, and
/// matches are identical with and without it.
pub(crate) fn run_array(
    sim: &mut dyn ArraySim,
    input: &[u8],
    meter: &mut EnergyMeter,
    mut probe: Option<(&mut SimProbe, u32)>,
) -> ArrayOutcome {
    let mut cycles = 0u64;
    let mut matches = Vec::new();
    let mut step = |sim: &mut dyn ArraySim,
                    byte: Option<u8>,
                    offset: usize,
                    cycles: &mut u64,
                    matches: &mut Vec<MatchEvent>| {
        if let Some((probe, array)) = probe.as_mut() {
            if (*cycles).is_multiple_of(u64::from(probe.sample_every())) {
                let obs = sim.observe();
                probe.push(ProbeEvent::Array {
                    cycle: *cycles,
                    array: *array,
                    active_states: obs.active_states,
                    powered_tiles: obs.powered_tiles,
                    stalled: sim.stalled(),
                });
            }
        }
        sim.tick(byte, offset, meter, matches);
        *cycles += 1;
    };
    for (offset, &byte) in input.iter().enumerate() {
        while sim.stalled() {
            step(sim, None, offset, &mut cycles, &mut matches);
        }
        step(sim, Some(byte), offset, &mut cycles, &mut matches);
    }
    while sim.stalled() {
        step(sim, None, input.len(), &mut cycles, &mut matches);
    }
    if let Some((probe, array)) = probe {
        probe.push(ProbeEvent::ArrayEnd {
            array,
            cycles,
            stall_cycles: cycles.saturating_sub(input.len() as u64),
            powered_tile_cycles: sim.powered_tile_cycles(),
            matches: matches.len() as u64,
        });
    }
    ArrayOutcome {
        cycles,
        matches,
        powered_tile_cycles: sim.powered_tile_cycles(),
    }
}

fn expect_nfa(compiled: &[Compiled], pattern: usize) -> &CompiledNfa {
    match &compiled[pattern] {
        Compiled::Nfa(img) => img,
        other => panic!(
            "array plan references pattern {pattern} as NFA but it compiled to {}",
            other.mode()
        ),
    }
}

fn expect_nbva(compiled: &[Compiled], pattern: usize) -> &CompiledNbva {
    match &compiled[pattern] {
        Compiled::Nbva(img) => img,
        other => panic!(
            "array plan references pattern {pattern} as NBVA but it compiled to {}",
            other.mode()
        ),
    }
}

fn expect_lnfa(compiled: &[Compiled], pattern: usize) -> &CompiledLnfa {
    match &compiled[pattern] {
        Compiled::Lnfa(img) => img,
        other => panic!(
            "array plan references pattern {pattern} as LNFA but it compiled to {}",
            other.mode()
        ),
    }
}

/// Per-cycle housekeeping common to all modes: controllers and buffering.
fn charge_overheads(meter: &mut EnergyMeter, cost: &CostModel, powered_tiles: u32) {
    meter.charge(
        Category::Controller,
        cost.local_ctrl_pj * f64::from(powered_tiles) + cost.global_ctrl_pj,
    );
    meter.charge(Category::Buffer, cost.buffer_pj);
}

/// Charges state matching + transition for one NFA-mode cycle.
fn charge_nfa_cycle(
    meter: &mut EnergyMeter,
    cost: &CostModel,
    tile_active: &[u32],
    cross_signals: u32,
) {
    let tile_cols = 128.0;
    meter.charge(
        Category::StateMatch,
        cost.match_pj * tile_active.len() as f64,
    );
    for &active in tile_active {
        let activity = (f64::from(active) / tile_cols).min(1.0);
        meter.charge(
            Category::LocalSwitch,
            cost.local_switch.access_energy_pj(activity),
        );
    }
    let g_activity = (f64::from(cross_signals) / 256.0).min(1.0);
    meter.charge(
        Category::GlobalSwitch,
        cost.global_switch.access_energy_pj(g_activity),
    );
    meter.charge(Category::Wire, cost.wire_pj * f64::from(cross_signals));
}

/// Whether each state of each placement has a successor in a different
/// tile (its active signal must traverse the global switch).
fn cross_tile_flags<S>(
    placements: &[Placement],
    states_of: impl Fn(usize) -> Vec<(usize, S)>,
    succ_of: impl Fn(&S) -> Vec<u32>,
) -> Vec<Vec<bool>> {
    placements
        .iter()
        .enumerate()
        .map(|(i, p)| {
            states_of(i)
                .into_iter()
                .map(|(q, s)| {
                    succ_of(&s)
                        .into_iter()
                        .any(|succ| p.state_tile[succ as usize] != p.state_tile[q])
                })
                .collect()
        })
        .collect()
}

// ---------------------------------------------------------------------
// NFA mode
// ---------------------------------------------------------------------

/// Basic NFA array (§2.2): every tile searches and routes every cycle.
pub(crate) struct NfaArray<'a> {
    placements: &'a [Placement],
    runs: Vec<rap_automata::nfa::NfaRun<'a>>,
    crosses: Vec<Vec<bool>>,
    tiles: usize,
    cost: CostModel,
    tile_active: Vec<u32>,
    powered_tile_cycles: u64,
}

impl<'a> NfaArray<'a> {
    pub(crate) fn new(
        compiled: &'a [Compiled],
        placements: &'a [Placement],
        plan: &ArrayPlan,
        cost: CostModel,
    ) -> NfaArray<'a> {
        let images: Vec<&CompiledNfa> = placements
            .iter()
            .map(|p| expect_nfa(compiled, p.pattern))
            .collect();
        let crosses = cross_tile_flags(
            placements,
            |i| {
                images[i]
                    .nfa
                    .states()
                    .iter()
                    .cloned()
                    .enumerate()
                    .collect::<Vec<_>>()
            },
            |s| s.succ.clone(),
        );
        NfaArray {
            placements,
            runs: images.iter().map(|img| img.nfa.start()).collect(),
            crosses,
            tiles: plan.tiles_used as usize,
            cost,
            tile_active: vec![0; plan.tiles_used as usize],
            powered_tile_cycles: 0,
        }
    }
}

impl ArraySim for NfaArray<'_> {
    fn stalled(&self) -> bool {
        false
    }

    fn tick(
        &mut self,
        byte: Option<u8>,
        offset: usize,
        meter: &mut EnergyMeter,
        out: &mut Vec<MatchEvent>,
    ) {
        let byte = byte.expect("NFA arrays never stall");
        // Activity entering this cycle drives the transition fabric.
        self.tile_active.iter_mut().for_each(|c| *c = 0);
        let mut cross_signals = 0u32;
        for ((p, run), cross) in self
            .placements
            .iter()
            .zip(self.runs.iter())
            .zip(self.crosses.iter())
        {
            for q in run.active_bits().iter_ones() {
                self.tile_active[p.state_tile[q] as usize] += 1;
                cross_signals += u32::from(cross[q]);
            }
        }
        charge_nfa_cycle(meter, &self.cost, &self.tile_active, cross_signals);
        charge_overheads(meter, &self.cost, self.tiles as u32);
        self.powered_tile_cycles += self.tiles as u64;
        for (i, run) in self.runs.iter_mut().enumerate() {
            if run.step(byte) {
                out.push(MatchEvent {
                    pattern: self.placements[i].pattern,
                    end: offset + 1,
                });
            }
        }
    }

    fn powered_tile_cycles(&self) -> u64 {
        self.powered_tile_cycles
    }

    fn observe(&self) -> ArrayObservation {
        ArrayObservation {
            active_states: self.runs.iter().map(|r| u64::from(r.active_count())).sum(),
            powered_tiles: self.tiles as u64,
        }
    }
}

// ---------------------------------------------------------------------
// NBVA mode
// ---------------------------------------------------------------------

/// NBVA array (§3.1): NFA-style matching plus the event-driven
/// bit-vector-processing phase, which stalls the whole array for `depth`
/// cycles (or the fixed BVM latency on BVAP).
pub(crate) struct NbvaArray<'a> {
    placements: &'a [Placement],
    runs: Vec<rap_automata::nbva::NbvaRun<'a>>,
    /// (placement idx, state id, tile) of every BV state.
    bv_states: Vec<(usize, u32, u32)>,
    crosses: Vec<Vec<bool>>,
    tiles: usize,
    cost: CostModel,
    stall_per_phase: u64,
    /// Remaining stall cycles of the current bit-vector-processing phase.
    stall_remaining: u64,
    /// Tiles with live bit vectors during the current phase.
    phase_active_tiles: u32,
    tile_active: Vec<u32>,
    bv_tile_active: Vec<bool>,
    powered_tile_cycles: u64,
}

impl<'a> NbvaArray<'a> {
    pub(crate) fn new(
        compiled: &'a [Compiled],
        placements: &'a [Placement],
        plan: &ArrayPlan,
        depth: u32,
        cost: CostModel,
    ) -> NbvaArray<'a> {
        let images: Vec<&CompiledNbva> = placements
            .iter()
            .map(|p| expect_nbva(compiled, p.pattern))
            .collect();
        let bv_states: Vec<(usize, u32, u32)> = placements
            .iter()
            .enumerate()
            .zip(images.iter())
            .flat_map(|((i, p), img)| {
                img.bv_allocs
                    .iter()
                    .enumerate()
                    .filter(|(_, a)| a.is_some())
                    .map(move |(q, _)| (i, q as u32, p.state_tile[q]))
                    .collect::<Vec<_>>()
            })
            .collect();
        let crosses = cross_tile_flags(
            placements,
            |i| {
                images[i]
                    .nbva
                    .states()
                    .iter()
                    .cloned()
                    .enumerate()
                    .collect::<Vec<_>>()
            },
            |s| s.succ.clone(),
        );
        let stall_per_phase = if cost.machine == Machine::Bvap {
            cost.bvap_stall_cycles
        } else {
            u64::from(depth)
        };
        NbvaArray {
            placements,
            runs: images.iter().map(|img| img.nbva.start()).collect(),
            bv_states,
            crosses,
            tiles: plan.tiles_used as usize,
            cost,
            stall_per_phase,
            stall_remaining: 0,
            phase_active_tiles: 0,
            tile_active: vec![0; plan.tiles_used as usize],
            bv_tile_active: vec![false; plan.tiles_used as usize],
            powered_tile_cycles: 0,
        }
    }
}

impl ArraySim for NbvaArray<'_> {
    fn stalled(&self) -> bool {
        self.stall_remaining > 0
    }

    fn tick(
        &mut self,
        byte: Option<u8>,
        offset: usize,
        meter: &mut EnergyMeter,
        out: &mut Vec<MatchEvent>,
    ) {
        if self.stall_remaining > 0 {
            // One cycle of the bit-vector-processing pipeline: only tiles
            // with live vectors run (read → action/route → write back).
            self.stall_remaining -= 1;
            let active = f64::from(self.phase_active_tiles);
            self.powered_tile_cycles += u64::from(self.phase_active_tiles);
            meter.charge(Category::BitVector, self.cost.bv_step_pj * active);
            meter.charge(
                Category::Controller,
                self.cost.global_ctrl_pj + self.cost.local_ctrl_pj * active,
            );
            return;
        }
        let byte = byte.expect("non-stalled tick needs an input byte");
        self.powered_tile_cycles += self.tiles as u64;
        self.tile_active.iter_mut().for_each(|c| *c = 0);
        let mut cross_signals = 0u32;
        for ((p, run), cross) in self
            .placements
            .iter()
            .zip(self.runs.iter())
            .zip(self.crosses.iter())
        {
            for q in run.plain_active_bits().iter_ones() {
                self.tile_active[p.state_tile[q] as usize] += 1;
                cross_signals += u32::from(cross[q]);
            }
        }
        for &(i, q, tile) in &self.bv_states {
            if self.runs[i].vector(q).any() {
                self.tile_active[tile as usize] += 1;
                cross_signals += u32::from(self.crosses[i][q as usize]);
            }
        }
        charge_nfa_cycle(meter, &self.cost, &self.tile_active, cross_signals);
        charge_overheads(meter, &self.cost, self.tiles as u32);

        let mut bv_phase = false;
        for (i, run) in self.runs.iter_mut().enumerate() {
            let info = run.step_detailed(byte);
            bv_phase |= info.bv_touched;
            if info.matched {
                out.push(MatchEvent {
                    pattern: self.placements[i].pattern,
                    end: offset + 1,
                });
            }
        }
        if bv_phase {
            // The global controller stalls the array for the next `depth`
            // cycles while the phase streams BV words.
            self.bv_tile_active.iter_mut().for_each(|b| *b = false);
            for &(i, q, tile) in &self.bv_states {
                if self.runs[i].vector(q).any() {
                    self.bv_tile_active[tile as usize] = true;
                }
            }
            self.phase_active_tiles = self.bv_tile_active.iter().filter(|&&b| b).count() as u32;
            self.stall_remaining = self.stall_per_phase;
        }
    }

    fn powered_tile_cycles(&self) -> u64 {
        self.powered_tile_cycles
    }

    fn observe(&self) -> ArrayObservation {
        ArrayObservation {
            active_states: self.runs.iter().map(|r| u64::from(r.active_count())).sum(),
            // During a bit-vector-processing phase only the tiles with
            // live vectors run; otherwise the whole array is powered.
            powered_tiles: if self.stall_remaining > 0 {
                u64::from(self.phase_active_tiles)
            } else {
                self.tiles as u64
            },
        }
    }
}

// ---------------------------------------------------------------------
// LNFA mode
// ---------------------------------------------------------------------

/// One mapped chain inside an LNFA array.
struct ChainRun<'a> {
    pattern: usize,
    run: rap_automata::lnfa::ShiftAndRun<'a>,
    /// Absolute tile index of every chain position.
    state_tile: Vec<u32>,
    len: usize,
}

/// LNFA array (§3.2): Shift-And in the active vector, power-gated tiles,
/// ring routing between adjacent tiles.
pub(crate) struct LnfaArray<'a> {
    chains: Vec<ChainRun<'a>>,
    tile_cam: Vec<bool>,
    tile_switch: Vec<bool>,
    tile_initial: Vec<bool>,
    initial_cands: Vec<u32>,
    tiles: usize,
    cost: CostModel,
    powered: Vec<bool>,
    cands: Vec<u32>,
    powered_tile_cycles: u64,
}

impl<'a> LnfaArray<'a> {
    pub(crate) fn new(
        compiled: &'a [Compiled],
        bins: &'a [Bin],
        plan: &ArrayPlan,
        cost: CostModel,
    ) -> LnfaArray<'a> {
        let tiles = plan.tiles_used as usize;
        let mut chains: Vec<ChainRun<'a>> = Vec::new();
        // Which powered tiles search via the CAM vs the one-hot local
        // switch, and which tiles hold initial states (never power-gated).
        let mut tile_cam = vec![false; tiles];
        let mut tile_switch = vec![false; tiles];
        let mut tile_initial = vec![false; tiles];
        for bin in bins {
            for member in &bin.members {
                let img = expect_lnfa(compiled, member.pattern);
                let lnfa = &img.units[member.unit].lnfa;
                let state_tile: Vec<u32> = (0..lnfa.len() as u32)
                    .map(|s| bin.first_tile + bin.tile_of_state(member, s))
                    .collect();
                for &t in &state_tile {
                    match member.path {
                        MatchPath::Cam => tile_cam[t as usize] = true,
                        MatchPath::LocalSwitch => tile_switch[t as usize] = true,
                    }
                }
                tile_initial[state_tile[0] as usize] = true;
                chains.push(ChainRun {
                    pattern: member.pattern,
                    run: lnfa.start(),
                    state_tile,
                    len: lnfa.len(),
                });
            }
        }
        // Candidate states per tile: the always-armed initial states plus
        // the successors of active states. The active vector gates the CAM
        // columns (§3.2), so matching energy scales with candidates.
        let mut initial_cands = vec![0u32; tiles];
        for chain in &chains {
            initial_cands[chain.state_tile[0] as usize] += 1;
        }
        LnfaArray {
            chains,
            tile_cam,
            tile_switch,
            tile_initial,
            initial_cands,
            tiles,
            cost,
            powered: vec![false; tiles],
            cands: vec![0; tiles],
            powered_tile_cycles: 0,
        }
    }
}

impl ArraySim for LnfaArray<'_> {
    fn stalled(&self) -> bool {
        false
    }

    fn tick(
        &mut self,
        byte: Option<u8>,
        offset: usize,
        meter: &mut EnergyMeter,
        out: &mut Vec<MatchEvent>,
    ) {
        let byte = byte.expect("LNFA arrays never stall");
        // A tile is powered if it holds an initial state or a state that
        // can become active this cycle (an active predecessor shifts in).
        self.powered.copy_from_slice(&self.tile_initial);
        self.cands.copy_from_slice(&self.initial_cands);
        let mut ring_crossings = 0u32;
        for chain in &self.chains {
            for s in chain.run.states().iter_ones() {
                if s + 1 < chain.len {
                    let here = chain.state_tile[s];
                    let next = chain.state_tile[s + 1];
                    self.powered[next as usize] = true;
                    self.cands[next as usize] += 1;
                    if next != here {
                        ring_crossings += 1;
                    }
                }
            }
        }
        for t in 0..self.tiles {
            if !self.powered[t] {
                continue;
            }
            let activity = (f64::from(self.cands[t]) / 128.0).min(1.0);
            if self.tile_cam[t] {
                // Column-gated CAM search: wordline drive + the candidate
                // columns' compare energy.
                meter.charge(Category::StateMatch, 0.5 + self.cost.match_pj * activity);
            }
            if self.tile_switch[t] {
                // One-hot lookup in the local switch: two columns per
                // candidate state.
                meter.charge(
                    Category::StateMatch,
                    self.cost
                        .local_switch
                        .access_energy_pj((2.0 * activity).min(1.0)),
                );
            }
        }
        meter.charge(
            Category::Wire,
            self.cost.ring_hop_pj * f64::from(ring_crossings),
        );
        let powered_count = self.powered.iter().filter(|&&b| b).count() as u32;
        self.powered_tile_cycles += u64::from(powered_count);
        charge_overheads(meter, &self.cost, powered_count);

        for chain in self.chains.iter_mut() {
            if chain.run.step(byte) {
                out.push(MatchEvent {
                    pattern: chain.pattern,
                    end: offset + 1,
                });
            }
        }
    }

    fn powered_tile_cycles(&self) -> u64 {
        self.powered_tile_cycles
    }

    fn observe(&self) -> ArrayObservation {
        // Mirror the tick's power-gating rule without touching the
        // scratch vectors: a tile is powered if it holds an initial state
        // or a state an active predecessor can shift into.
        let mut powered = self.tile_initial.clone();
        let mut active_states = 0u64;
        for chain in &self.chains {
            for s in chain.run.states().iter_ones() {
                active_states += 1;
                if s + 1 < chain.len {
                    powered[chain.state_tile[s + 1] as usize] = true;
                }
            }
        }
        ArrayObservation {
            active_states,
            powered_tiles: powered.iter().filter(|&&b| b).count() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rap_compiler::{Compiler, CompilerConfig, Mode};
    use rap_telemetry::{Telemetry, TelemetryConfig};

    /// Compiles `xy{6}z` to NBVA and places it by hand on a 2-tile array:
    /// `x` on tile 0, the `y{6}` bit-vector state and `z` on tile 1.
    fn two_tile_nbva(depth: u32) -> (Vec<Compiled>, ArrayPlan) {
        let compiler = Compiler::new(CompilerConfig {
            bv_depth: depth,
            ..CompilerConfig::default()
        });
        let regex = rap_regex::parse("xy{6}z").expect("parses");
        let compiled = compiler
            .compile_with_mode(&regex, Mode::Nbva)
            .expect("compiles");
        let img = match &compiled {
            Compiled::Nbva(img) => img,
            other => panic!("expected NBVA, got {}", other.mode()),
        };
        assert_eq!(img.nbva.states().len(), 3, "x, y{{6}} (BV), z");
        assert!(img.bv_allocs[1].is_some(), "y{{6}} is the BV state");
        let columns_used = img.total_columns();
        let placements = vec![Placement {
            pattern: 0,
            state_tile: vec![0, 1, 1],
            cross_tile_edges: 1,
        }];
        let plan = ArrayPlan {
            kind: ArrayKind::Nbva { depth, placements },
            tiles_used: 2,
            columns_used,
        };
        (vec![compiled], plan)
    }

    fn run(
        compiled: &[Compiled],
        plan: &ArrayPlan,
        input: &[u8],
        probe: Option<(&mut SimProbe, u32)>,
    ) -> ArrayOutcome {
        let cost = CostModel::for_machine(Machine::Rap);
        let mut meter = EnergyMeter::new();
        let mut sim = build_array(compiled, plan, &cost);
        run_array(sim.as_mut(), input, &mut meter, probe)
    }

    #[test]
    fn nbva_outcome_matches_hand_computation_without_match() {
        let (compiled, plan) = two_tile_nbva(3);
        // `x` arms at offset 0; the `y` at offset 1 enters the bit vector,
        // triggering one 3-cycle BV phase with a single live-vector tile;
        // the `q`s clear the vector and nothing else fires. Hand count:
        //   cycles  = 6 input + 3 stall            = 9
        //   powered = 6 * 2 tiles + 3 * 1 tile     = 15 tile-cycles
        let outcome = run(&compiled, &plan, b"xyqqqq", None);
        assert_eq!(outcome.cycles, 9);
        assert_eq!(outcome.cycles - 6, 3, "stall cycles");
        assert_eq!(outcome.powered_tile_cycles, 15);
        assert!(outcome.matches.is_empty());
    }

    #[test]
    fn nbva_outcome_matches_hand_computation_with_match() {
        let (compiled, plan) = two_tile_nbva(3);
        // Each of the six `y` bytes touches the bit vector, so six 3-cycle
        // BV phases fire before `z` completes the match at end offset 8:
        //   cycles  = 8 input + 6 * 3 stall        = 26
        //   powered = 8 * 2 tiles + 18 * 1 tile    = 34 tile-cycles
        let outcome = run(&compiled, &plan, b"xyyyyyyz", None);
        assert_eq!(outcome.cycles, 26);
        assert_eq!(outcome.cycles - 8, 18, "stall cycles");
        assert_eq!(outcome.powered_tile_cycles, 34);
        assert_eq!(outcome.matches, vec![MatchEvent { pattern: 0, end: 8 }]);
    }

    #[test]
    fn probe_samples_every_cycle_and_flags_stalls() {
        let (compiled, plan) = two_tile_nbva(3);
        let tel = Telemetry::new(TelemetryConfig {
            sample_every: 1,
            ring_capacity: 1024,
        });
        let mut probe = tel.probe("unit");
        let outcome = run(&compiled, &plan, b"xyqqqq", Some((&mut probe, 7)));
        probe.finish();
        assert_eq!(outcome.cycles, 9);
        let traces = tel.drain_traces();
        assert_eq!(traces.len(), 1);
        let events = &traces[0].events;
        // One sample per cycle plus the end-of-array summary.
        assert_eq!(events.len(), 10);
        let stalled: Vec<&ProbeEvent> = events
            .iter()
            .filter(|e| matches!(e, ProbeEvent::Array { stalled: true, .. }))
            .collect();
        assert_eq!(stalled.len(), 3);
        for e in &stalled {
            if let ProbeEvent::Array { powered_tiles, .. } = e {
                // Only the live-vector tile stays powered during the phase.
                assert_eq!(*powered_tiles, 1);
            }
        }
        assert!(matches!(
            events.last(),
            Some(ProbeEvent::ArrayEnd {
                array: 7,
                cycles: 9,
                stall_cycles: 3,
                powered_tile_cycles: 15,
                matches: 0,
            })
        ));
    }
}
