//! Simulation outputs.

use rap_circuit::{EnergyMeter, Machine, Metrics};
use serde::{Deserialize, Serialize};

/// One reported match: pattern index and the offset just past its last
/// symbol (AP-style report-on-final-STE semantics).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MatchEvent {
    /// Index of the pattern in the workload.
    pub pattern: usize,
    /// Offset just past the matched substring's final byte.
    pub end: usize,
}

/// The result of simulating one workload on one machine.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// The machine simulated.
    pub machine: Machine,
    /// Aggregate metrics (throughput, power, area, …).
    pub metrics: Metrics,
    /// Energy breakdown by category.
    pub energy: EnergyMeter,
    /// All matches, sorted by (end, pattern) and deduplicated.
    pub matches: Vec<MatchEvent>,
    /// Cycles lost to bit-vector-processing stalls across arrays.
    pub stall_cycles: u64,
}
