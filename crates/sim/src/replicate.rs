//! Multi-bank workload sharing (§5.5 / §3.3).
//!
//! "To reduce the throughput discrepancy between NBVA mode and NFA/LNFA
//! mode, multiple RAP banks can be configured to share the workload of low
//! throughput banks." This module implements that mechanism: when a
//! mapped workload's throughput falls below a target, the hardware is
//! replicated and the input stream is sharded across the replicas, each
//! shard extended by a *lookback overlap* long enough that any match
//! crossing a shard boundary is still seen by the next replica (the same
//! discipline the batch software engine uses for its chunks).
//!
//! Cost accounting: replicas run in parallel, so the wall clock is the
//! slowest shard's; energy adds up (each replica really switches); area
//! multiplies by the replica count.

use crate::result::{MatchEvent, RunResult};
use rap_circuit::Machine;
use rap_circuit::Metrics;
use rap_compiler::Compiled;
use rap_mapper::Mapping;

/// The outcome of a replicated run.
#[derive(Clone, Debug)]
pub struct ReplicatedRun {
    /// Combined result (deduplicated matches, max cycles, summed energy,
    /// multiplied area).
    pub result: RunResult,
    /// Replicas used (1 = no replication was needed).
    pub replicas: u32,
    /// Overlap bytes prepended to each shard after the first.
    pub overlap: usize,
}

/// Longest possible match span of a compiled workload, in bytes — the
/// lookback a shard needs so boundary-crossing matches are not lost.
/// Patterns with unbounded loops have no finite span; they force
/// whole-stream processing (returns `None`).
pub fn max_match_span(compiled: &[Compiled]) -> Option<usize> {
    let mut span = 0usize;
    for c in compiled {
        match c {
            Compiled::Nfa(img) => {
                // A cycle in the automaton means unbounded matches.
                if has_cycle(&img.nfa) {
                    return None;
                }
                span = span.max(img.nfa.len());
            }
            Compiled::Nbva(img) => {
                let total: u64 = img
                    .nbva
                    .states()
                    .iter()
                    .map(|s| u64::from(s.width().max(1)))
                    .sum();
                if has_cycle_nbva(&img.nbva) {
                    return None;
                }
                span = span.max(total as usize);
            }
            Compiled::Lnfa(img) => {
                span = span.max(img.max_chain_len());
            }
        }
    }
    Some(span)
}

/// Iterative cycle detection (white/gray/black DFS) over a successor
/// function.
fn digraph_has_cycle(n: usize, succ: impl Fn(usize) -> Vec<u32>) -> bool {
    let mut color = vec![0u8; n]; // 0 white, 1 gray, 2 black
    let mut stack: Vec<(usize, usize)> = Vec::new();
    for start in 0..n {
        if color[start] != 0 {
            continue;
        }
        color[start] = 1;
        stack.push((start, 0));
        while let Some(&(v, i)) = stack.last() {
            let edges = succ(v);
            if i < edges.len() {
                stack.last_mut().expect("just peeked").1 += 1;
                let w = edges[i] as usize;
                match color[w] {
                    0 => {
                        color[w] = 1;
                        stack.push((w, 0));
                    }
                    1 => return true,
                    _ => {}
                }
            } else {
                color[v] = 2;
                stack.pop();
            }
        }
    }
    false
}

fn has_cycle(nfa: &rap_automata::nfa::Nfa) -> bool {
    digraph_has_cycle(nfa.len(), |v| nfa.states()[v].succ.clone())
}

fn has_cycle_nbva(nbva: &rap_automata::nbva::Nbva) -> bool {
    digraph_has_cycle(nbva.len(), |v| nbva.states()[v].succ.clone())
}

/// Runs the workload, replicating the hardware until the modeled
/// throughput reaches `target_gchps` (or `max_replicas` is hit, or the
/// workload cannot be sharded because a pattern has unbounded span).
pub fn simulate_replicated(
    compiled: &[Compiled],
    mapping: &Mapping,
    input: &[u8],
    machine: Machine,
    target_gchps: f64,
    max_replicas: u32,
) -> ReplicatedRun {
    let base = crate::simulate(compiled, mapping, input, machine);
    let base_thpt = base.metrics.throughput_gchps();
    if base_thpt >= target_gchps || input.is_empty() {
        return ReplicatedRun {
            result: base,
            replicas: 1,
            overlap: 0,
        };
    }
    // Anchored patterns are position-dependent: a shard boundary would
    // forge a fake stream start/end, so they block sharding too.
    if compiled
        .iter()
        .any(|c| c.anchored_start() || c.anchored_end())
    {
        return ReplicatedRun {
            result: base,
            replicas: 1,
            overlap: 0,
        };
    }
    let Some(span) = max_match_span(compiled) else {
        // Unbounded-span patterns cannot be sharded; ship the base run.
        return ReplicatedRun {
            result: base,
            replicas: 1,
            overlap: 0,
        };
    };
    let overlap = span.saturating_sub(1);
    let mut replicas = ((target_gchps / base_thpt).ceil() as u32).clamp(2, max_replicas);
    // Shards must be long enough that the overlap is amortized.
    let min_shard = (overlap * 4).max(1);
    let max_useful = (input.len() / min_shard).max(1) as u32;
    replicas = replicas.min(max_useful).max(1);
    if replicas == 1 {
        return ReplicatedRun {
            result: base,
            replicas: 1,
            overlap: 0,
        };
    }

    let shard_len = input.len().div_ceil(replicas as usize);
    let mut combined_matches: Vec<MatchEvent> = Vec::new();
    let mut max_cycles = 0u64;
    let mut energy_uj = 0.0;
    for r in 0..replicas as usize {
        let start = r * shard_len;
        if start >= input.len() {
            break;
        }
        let end = ((r + 1) * shard_len).min(input.len());
        let from = start.saturating_sub(overlap);
        let shard = &input[from..end];
        let run = crate::simulate(compiled, mapping, shard, machine);
        max_cycles = max_cycles.max(run.metrics.cycles);
        energy_uj += run.metrics.energy_uj;
        combined_matches.extend(run.matches.into_iter().filter_map(|m| {
            let global_end = from + m.end;
            // Matches ending inside the lookback belong to the previous
            // shard.
            (global_end > start).then_some(MatchEvent {
                pattern: m.pattern,
                end: global_end,
            })
        }));
    }
    combined_matches.sort_unstable_by_key(|m| (m.end, m.pattern));
    combined_matches.dedup();

    let metrics = Metrics {
        input_chars: input.len() as u64,
        cycles: max_cycles,
        clock_hz: base.metrics.clock_hz,
        energy_uj,
        area_mm2: base.metrics.area_mm2 * f64::from(replicas),
        matches: combined_matches.len() as u64,
    };
    ReplicatedRun {
        result: RunResult {
            machine,
            metrics,
            energy: base.energy, // breakdown of one replica (shape, not sum)
            matches: combined_matches,
            stall_cycles: base.stall_cycles,
        },
        replicas,
        overlap,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Simulator;
    use rap_regex::Regex;

    fn regexes(patterns: &[&str]) -> Vec<Regex> {
        patterns
            .iter()
            .map(|p| rap_regex::parse(p).expect("parses"))
            .collect()
    }

    fn setup(patterns: &[&str]) -> (Vec<Compiled>, Mapping) {
        let sim = Simulator::new(Machine::Rap);
        let compiled = sim.compile(&regexes(patterns)).expect("compiles");
        let mapping = sim.map(&compiled);
        (compiled, mapping)
    }

    #[test]
    fn span_of_bounded_patterns() {
        let (compiled, _) = setup(&["abc", "x{40}y", "a(b|c)d"]);
        // x{40}y: 41 states + the prefix-less x BV of width 40 → span 41.
        assert_eq!(max_match_span(&compiled), Some(41));
    }

    #[test]
    fn unbounded_span_blocks_sharding() {
        let (compiled, _) = setup(&["a.*b"]);
        assert_eq!(max_match_span(&compiled), None);
    }

    #[test]
    fn replication_preserves_matches_and_lifts_throughput() {
        // A stall-heavy NBVA workload on a stream that triggers often.
        let (compiled, mapping) = setup(&["ab{20,60}c"]);
        let mut input = Vec::new();
        for _ in 0..300 {
            input.extend_from_slice(b"a");
            input.extend(std::iter::repeat_n(b'b', 30));
            input.extend_from_slice(b"c....");
        }
        let base = crate::simulate(&compiled, &mapping, &input, Machine::Rap);
        let rep = simulate_replicated(&compiled, &mapping, &input, Machine::Rap, 2.0, 8);
        assert!(
            rep.replicas > 1,
            "expected replication, base {}",
            base.metrics.throughput_gchps()
        );
        assert_eq!(
            rep.result.matches, base.matches,
            "matches must survive sharding"
        );
        assert!(
            rep.result.metrics.throughput_gchps() > base.metrics.throughput_gchps(),
            "replicated {} <= base {}",
            rep.result.metrics.throughput_gchps(),
            base.metrics.throughput_gchps()
        );
        assert!(rep.result.metrics.area_mm2 > base.metrics.area_mm2);
    }

    #[test]
    fn fast_workloads_do_not_replicate() {
        let (compiled, mapping) = setup(&["hello", "world"]);
        let input = b"hello world ".repeat(100);
        let rep = simulate_replicated(&compiled, &mapping, &input, Machine::Rap, 2.0, 8);
        assert_eq!(rep.replicas, 1);
    }

    #[test]
    fn boundary_matches_are_not_lost_or_duplicated() {
        let (compiled, mapping) = setup(&["qq{8}r"]);
        // Put matches right around potential shard boundaries.
        let unit = b"qqqqqqqqqr".to_vec(); // matches: q q{8} r
        let mut input = Vec::new();
        for _ in 0..100 {
            input.extend_from_slice(&unit);
            input.extend_from_slice(b"ab");
        }
        let base = crate::simulate(&compiled, &mapping, &input, Machine::Rap);
        let rep = simulate_replicated(&compiled, &mapping, &input, Machine::Rap, 10.0, 6);
        assert_eq!(rep.result.matches, base.matches);
    }
}
