//! Partial reconfiguration: mid-stream hot swap of a subset of arrays.
//!
//! RAP arrays run independently on the same stream and couple only
//! through the bank buffers, so swapping the automata resident in a
//! subset of slots while the remaining arrays keep scanning is
//! well-defined: the *stable* arrays never observe the swap, the
//! *retired* arrays stop consuming at the swap offset and drain, and the
//! *fresh* arrays attach at the swap offset and scan only post-swap
//! bytes. [`simulate_hot_swap`] models exactly that by decomposing the
//! run into three sub-plans, each carved out of a verified mapping by
//! [`extract_arrays`] (the carved plan re-verifies by construction:
//! every rule the gate checks is per-array or per-pattern-coverage, and
//! extraction keeps arrays intact while restricting the image set to the
//! patterns those arrays place).
//!
//! The quiescence *window* — how long after the swap offset the retired
//! arrays still hold live state — is observed from the drain segment's
//! cycle count, and [`pick_quiescence`] recovers the same figure from
//! the cycle-sampled telemetry probes when the caller prefers to
//! schedule from the journal (the serve/bench layers do).

use rap_compiler::Compiled;
use rap_mapper::{ArrayKind, ArrayPlan, Mapping};
use rap_telemetry::{ProbeEvent, RunTrace, Telemetry};

use crate::{simulate, simulate_traced, Machine, MatchEvent};

/// A sub-workload carved out of a larger mapped plan: the chosen arrays
/// with their pattern indices compacted, plus the translation table back
/// to the donor plan's namespace.
#[derive(Clone, Debug)]
pub struct Extraction {
    /// The images the chosen arrays place, in donor index order.
    pub images: Vec<Compiled>,
    /// The chosen arrays, pattern indices rewritten to `[0, n)`.
    pub mapping: Mapping,
    /// `patterns[new] = old`: translation back to the donor namespace.
    pub patterns: Vec<usize>,
}

/// Rewrites every pattern index in an array plan through `remap`.
fn remap_array(plan: &ArrayPlan, remap: impl Fn(usize) -> usize) -> ArrayPlan {
    let mut out = plan.clone();
    match &mut out.kind {
        ArrayKind::Nfa { placements } | ArrayKind::Nbva { placements, .. } => {
            for p in placements {
                p.pattern = remap(p.pattern);
            }
        }
        ArrayKind::Lnfa { bins } => {
            for bin in bins {
                for m in &mut bin.members {
                    m.pattern = remap(m.pattern);
                }
            }
        }
    }
    out
}

/// Carves the sub-plan consisting of `arrays` (indices into
/// `mapping.arrays`) out of a verified plan. Sound only when the chosen
/// arrays place a pattern set disjoint from the remaining arrays'
/// (true at tenant granularity in a composed plan: slots are exclusive
/// and no tenant's pattern is split across tenants).
///
/// # Panics
///
/// Panics when an index in `arrays` is out of range.
pub fn extract_arrays(images: &[Compiled], mapping: &Mapping, arrays: &[usize]) -> Extraction {
    let mut old_patterns: Vec<usize> = arrays
        .iter()
        .flat_map(|&a| mapping.arrays[a].pattern_indices())
        .collect();
    old_patterns.sort_unstable();
    old_patterns.dedup();
    let remap = |old: usize| -> usize {
        old_patterns
            .binary_search(&old)
            .expect("extracted array references an extracted pattern")
    };
    let sub_arrays: Vec<ArrayPlan> = arrays
        .iter()
        .map(|&a| remap_array(&mapping.arrays[a], remap))
        .collect();
    Extraction {
        images: old_patterns.iter().map(|&p| images[p].clone()).collect(),
        mapping: Mapping {
            arrays: sub_arrays,
            config: mapping.config,
        },
        patterns: old_patterns,
    }
}

/// The outcome of one mid-stream hot swap run.
#[derive(Clone, Debug)]
pub struct HotSwapRun {
    /// Matches in the **pre-swap** plan's pattern namespace: stable
    /// arrays over the full stream plus retired arrays over the pre-swap
    /// prefix. Sorted by `(end, pattern)`.
    pub pre_matches: Vec<MatchEvent>,
    /// Matches of the freshly attached arrays in the **post-swap**
    /// plan's namespace, with global stream offsets. Sorted.
    pub fresh_matches: Vec<MatchEvent>,
    /// Cycles the retired arrays needed beyond the swap offset to
    /// quiesce (their catch-up and flush tail).
    pub observed_drain_cycles: u64,
    /// Cycle at which the swap window closes: `swap_at` plus the
    /// observed drain.
    pub quiesce_cycle: u64,
    /// Slowest segment's cycle count (the run's critical path).
    pub cycles: u64,
}

/// Applies a certified swap mid-stream: the `retired` arrays of the
/// pre-swap plan stop consuming at `swap_at` and drain, the remaining
/// (stable) arrays scan the whole stream uninterrupted, and the `fresh`
/// arrays of the post-swap plan attach at `swap_at`. When telemetry is
/// attached, the three segments are traced under `label` with
/// `-stable`/`-drain`/`-fresh` suffixes, so the cycle-sampled probes of
/// the drain segment feed [`pick_quiescence`].
///
/// # Panics
///
/// Panics when `swap_at` exceeds the input length or an array index is
/// out of range.
#[allow(clippy::too_many_arguments)]
pub fn simulate_hot_swap(
    pre_images: &[Compiled],
    pre_mapping: &Mapping,
    retired: &[usize],
    post_images: &[Compiled],
    post_mapping: &Mapping,
    fresh: &[usize],
    input: &[u8],
    swap_at: usize,
    machine: Machine,
    telemetry: Option<(&Telemetry, &str)>,
) -> HotSwapRun {
    assert!(swap_at <= input.len(), "swap offset beyond the stream");
    let run_segment = |ex: &Extraction, segment: &[u8], suffix: &str| {
        if ex.mapping.arrays.is_empty() {
            return Vec::new();
        }
        let result = match telemetry {
            Some((tel, label)) => simulate_traced(
                &ex.images,
                &ex.mapping,
                segment,
                machine,
                tel,
                &format!("{label}{suffix}"),
            ),
            None => simulate(&ex.images, &ex.mapping, segment, machine),
        };
        result
            .matches
            .iter()
            .map(|m| MatchEvent {
                pattern: ex.patterns[m.pattern],
                end: m.end,
            })
            .collect::<Vec<MatchEvent>>()
    };

    let stable: Vec<usize> = (0..pre_mapping.arrays.len())
        .filter(|a| !retired.contains(a))
        .collect();
    let stable_ex = extract_arrays(pre_images, pre_mapping, &stable);
    let retired_ex = extract_arrays(pre_images, pre_mapping, retired);
    let fresh_ex = extract_arrays(post_images, post_mapping, fresh);

    let mut pre_matches = run_segment(&stable_ex, input, "-stable");
    let stable_cycles = input.len() as u64;

    // Drain segment: the retired arrays see the stream end at the swap
    // offset ($-anchored outgoing patterns report there — the drained
    // tenant's stream truly ends at the swap).
    let mut drain_cycles = 0u64;
    if !retired_ex.mapping.arrays.is_empty() {
        let prefix = &input[..swap_at];
        let result = match telemetry {
            Some((tel, label)) => simulate_traced(
                &retired_ex.images,
                &retired_ex.mapping,
                prefix,
                machine,
                tel,
                &format!("{label}-drain"),
            ),
            None => simulate(&retired_ex.images, &retired_ex.mapping, prefix, machine),
        };
        drain_cycles = result.metrics.cycles.saturating_sub(swap_at as u64);
        pre_matches.extend(result.matches.iter().map(|m| MatchEvent {
            pattern: retired_ex.patterns[m.pattern],
            end: m.end,
        }));
    }
    pre_matches.sort_unstable_by_key(|m| (m.end, m.pattern));

    // Fresh segment: globalize the suffix-relative end offsets.
    let mut fresh_matches = run_segment(&fresh_ex, &input[swap_at..], "-fresh");
    for m in &mut fresh_matches {
        m.end += swap_at;
    }
    fresh_matches.sort_unstable_by_key(|m| (m.end, m.pattern));

    let quiesce_cycle = swap_at as u64 + drain_cycles;
    HotSwapRun {
        pre_matches,
        fresh_matches,
        observed_drain_cycles: drain_cycles,
        quiesce_cycle,
        cycles: stable_cycles.max(quiesce_cycle),
    }
}

/// The quiescence scheduler's journal-side view: recovers the cycle at
/// which every retired array went idle from the cycle-sampled probes of
/// a hot swap's drain segment (the trace labeled `<label>-drain`).
/// Returns `None` when no such trace (or no terminal event) exists —
/// e.g. when the swap retired nothing or tracing was off.
pub fn pick_quiescence(traces: &[RunTrace], label: &str) -> Option<u64> {
    let want = format!("{label}-drain");
    let mut quiesce: Option<u64> = None;
    for trace in traces.iter().filter(|t| t.label == want) {
        for event in &trace.events {
            let cycle = match event {
                ProbeEvent::ArrayEnd { cycles, .. } => Some(*cycles),
                ProbeEvent::Array { cycle, .. } | ProbeEvent::Bank { cycle, .. } => Some(*cycle),
                ProbeEvent::RunEnd { cycles, .. } => Some(*cycles),
            };
            if let Some(c) = cycle {
                quiesce = Some(quiesce.map_or(c, |q| q.max(c)));
            }
        }
    }
    quiesce
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Simulator;

    fn plan(sources: &[&str]) -> (Vec<Compiled>, Mapping) {
        let sim = Simulator::new(Machine::Rap);
        let parsed: Vec<rap_regex::Pattern> = sources
            .iter()
            .map(|s| rap_regex::parse_pattern(s).expect("parses"))
            .collect();
        let compiled = sim.compile_parsed(&parsed).expect("compiles");
        let mapping = sim.map_verified(&compiled).expect("verifies");
        (compiled, mapping)
    }

    #[test]
    fn extraction_round_trips_matches() {
        let (images, mapping) = plan(&["needle", "b{3,9}c", "hay+stack"]);
        let input = b"a needle in the haaaystack bbbbc needle";
        let full = simulate(&images, &mapping, input, Machine::Rap);
        let all: Vec<usize> = (0..mapping.arrays.len()).collect();
        let ex = extract_arrays(&images, &mapping, &all);
        let sub = simulate(&ex.images, &ex.mapping, input, Machine::Rap);
        let translated: Vec<MatchEvent> = sub
            .matches
            .iter()
            .map(|m| MatchEvent {
                pattern: ex.patterns[m.pattern],
                end: m.end,
            })
            .collect();
        assert_eq!(translated, full.matches);
    }

    /// Composes two solo plans tenant-style: disjoint arrays, the second
    /// tenant's pattern indices offset past the first's (the shape
    /// rap-admit certifies). Returns the composite plus the second
    /// tenant's array indices.
    fn compose(
        a: (Vec<Compiled>, Mapping),
        b: (Vec<Compiled>, Mapping),
    ) -> (Vec<Compiled>, Mapping, Vec<usize>) {
        let (mut images, mut mapping) = a;
        let offset = images.len();
        images.extend(b.0);
        let first = mapping.arrays.len();
        mapping
            .arrays
            .extend(b.1.arrays.iter().map(|p| remap_array(p, |i| i + offset)));
        let second: Vec<usize> = (first..mapping.arrays.len()).collect();
        (images, mapping, second)
    }

    #[test]
    fn stable_arrays_never_observe_the_swap() {
        let (pre_images, pre_mapping, retired) = compose(plan(&["needle"]), plan(&["haystack"]));
        let (post_images, post_mapping, fresh) = compose(plan(&["needle"]), plan(&["beacon"]));
        let input = b"a needle in the haystack, then a beacon and a needle";
        let swap_at = 24;
        let run = simulate_hot_swap(
            &pre_images,
            &pre_mapping,
            &retired,
            &post_images,
            &post_mapping,
            &fresh,
            input,
            swap_at,
            Machine::Rap,
            None,
        );
        // The stable pattern (pattern 0 on both sides) sees the whole
        // stream, bit-identically to an unswapped run.
        let full = simulate(&pre_images, &pre_mapping, input, Machine::Rap);
        let stable_full: Vec<&MatchEvent> =
            full.matches.iter().filter(|m| m.pattern == 0).collect();
        let stable_hot: Vec<&MatchEvent> =
            run.pre_matches.iter().filter(|m| m.pattern == 0).collect();
        assert_eq!(stable_hot, stable_full);
        // The retired pattern reports only before the swap offset.
        assert!(run
            .pre_matches
            .iter()
            .filter(|m| m.pattern == 1)
            .all(|m| m.end <= swap_at));
        // The fresh pattern reports only after it, with global offsets.
        assert!(!run.fresh_matches.is_empty(), "beacon matches post-swap");
        assert!(run.fresh_matches.iter().all(|m| m.end > swap_at));
        assert!(run.quiesce_cycle >= swap_at as u64);
    }

    #[test]
    fn quiescence_scheduler_reads_the_drain_trace() {
        let telemetry = Telemetry::new(rap_telemetry::TelemetryConfig::default());
        let (pre_images, pre_mapping, retired) = compose(plan(&["needle"]), plan(&["haystack"]));
        let (post_images, post_mapping) = plan(&["needle"]);
        let input = b"a needle in the haystack and another needle after it";
        let run = simulate_hot_swap(
            &pre_images,
            &pre_mapping,
            &retired,
            &post_images,
            &post_mapping,
            &[],
            input,
            30,
            Machine::Rap,
            Some((&telemetry, "swap")),
        );
        let traces = telemetry.drain_traces();
        let picked = pick_quiescence(&traces, "swap").expect("drain trace present");
        // The journal-side schedule agrees with the simulator's figure:
        // the drain trace's terminal event carries the segment's cycle
        // count, which is exactly swap offset + observed drain.
        assert_eq!(picked, run.quiesce_cycle);
        assert!(picked >= 30);
    }
}
