//! `rap-swap` — static hot-swap safety analyzer and certified live
//! partial reconfiguration.
//!
//! RAP's headline property is reconfigurability, and `rap-admit` already
//! certifies *static* co-residency. This crate certifies the *dynamic*
//! step: replacing one resident tenant with a new verified plan while
//! every other tenant keeps scanning. [`analyze_swap`] takes a resident
//! certified [`ComposedPlan`], the outgoing tenant's name, and the
//! replacement plan, and either emits a certified [`ReconfigPlan`] or
//! rejects with `Q`-rule findings on the shared `rap-diag` schema:
//!
//! | Code | Severity | Meaning |
//! |------|----------|---------|
//! | `Q001-footprint-slots` | error | the swap footprint (freed + free slots) cannot host the replacement without touching a staying tenant |
//! | `Q002-bank-interference` | error | a post-swap shared bank's worst-case burst exceeds its output capacity |
//! | `Q003-port-interference` | error | a post-swap shared bank's summed fan-in exceeds its port budget |
//! | `Q004-column-budget` | error | post-swap counter/BV columns exceed the fabric budget |
//! | `Q005-drain-unbounded` | error | the outgoing tenant's match span is unbounded: no finite drain bound exists |
//! | `Q006-demux-discontinuity` | error | the replacement cannot reuse the outgoing match-ID namespace without colliding with a staying tenant |
//! | `Q007-readmission-failed` | error | the spliced post-swap composition fails the verify/admission gate |
//! | `Q008-reconfig-overrun` | warning | reprogramming the footprint takes longer than the certified drain window |
//!
//! The analysis is a **delta** against the resident composition: staying
//! tenants' per-array loads are read off one `rap-bound` pass over the
//! resident composed plan (their slots, match IDs, and images are never
//! re-derived), and only the *replacement* tenant's solo bounds are
//! computed fresh. The certificate preserves every staying tenant's
//! slots and match-ID range verbatim — that is what makes the swap
//! invisible to them — and splices the replacement into the outgoing
//! tenant's pattern-index window.
//!
//! The drain bound is derived from certified quantities only: the
//! outgoing tenant's `max_match_span` (how many bytes an in-flight match
//! can still need), its B003 input-FIFO residency plus one ping-pong
//! page (bytes admitted but unscanned at the swap), a conservative
//! bit-vector stall allowance, and its B002 output-FIFO occupancy
//! flushed at one record per cycle. Reconfiguration cost is accounted
//! through the `rap-circuit` component models: one CAM row write and one
//! local-switch row write per cycle per tile (both fit the 2.08 GHz
//! clock period), local/global controller energy per tile/array.
//!
//! [`execute`] spends a certificate on `rap-sim`'s partial
//! reconfiguration mechanism and returns per-tenant match streams, so
//! callers can check the certified promise — staying tenants
//! bit-identical to an unswapped run — end to end.

use rap_admit::{ComposedPlan, TenantSummary};
use rap_arch::config::ArchConfig;
use rap_bound::{analyze_bounds, BoundOptions};
use rap_circuit::models::{CAM_32X128, GLOBAL_CONTROLLER, LOCAL_CONTROLLER, SRAM_128X128};
use rap_circuit::Machine;
use rap_compiler::Compiled;
use rap_diag::{Location, RuleCode, Severity};
use rap_mapper::{ArrayKind, ArrayPlan, Mapping};
use rap_sim::{extract_arrays, max_match_span, simulate_hot_swap, MatchEvent};
use rap_telemetry::Telemetry;

pub use rap_admit::Tenant;

/// The hot-swap report type.
pub type Report = rap_diag::Report<Rule>;

/// The hot-swap rules (`Q` series; see the crate docs for the table).
/// Codes are stable and append-only.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Rule {
    /// Q001: the swap footprint cannot host the replacement — the
    /// outgoing tenant's freed slots plus the free slots hold no
    /// contiguous run of the required size, the replacement was mapped
    /// for a different geometry, or the outgoing tenant is not resident.
    FootprintSlots,
    /// Q002: after the swap, a bank shared by two or more tenants has a
    /// worst-case simultaneous match burst exceeding its total output
    /// FIFO capacity (delta over the resident composition's certified
    /// per-array bounds).
    BankInterference,
    /// Q003: after the swap, a shared bank's summed per-tile
    /// global-switch fan-in exceeds its port budget.
    PortInterference,
    /// Q004: post-swap counter/BV columns exceed the fabric budget.
    ColumnBudget,
    /// Q005: the outgoing tenant's match span is unbounded (cyclic
    /// automaton): the cycles to quiesce its arrays cannot be bounded,
    /// so no drain certificate exists.
    DrainUnbounded,
    /// Q006: the replacement's match-ID namespace (the outgoing
    /// tenant's base, kept for demux continuity) collides with a
    /// staying tenant's range.
    DemuxDiscontinuity,
    /// Q007: the spliced post-swap composition fails the static verify
    /// gate — the certificate cannot be issued.
    ReadmissionFailed,
    /// Q008: reprogramming the swap footprint outlasts the certified
    /// drain window; the freed slots idle while the stream continues.
    ReconfigOverrun,
}

impl Rule {
    /// The stable diagnostic code.
    pub fn code(self) -> &'static str {
        match self {
            Rule::FootprintSlots => "Q001-footprint-slots",
            Rule::BankInterference => "Q002-bank-interference",
            Rule::PortInterference => "Q003-port-interference",
            Rule::ColumnBudget => "Q004-column-budget",
            Rule::DrainUnbounded => "Q005-drain-unbounded",
            Rule::DemuxDiscontinuity => "Q006-demux-discontinuity",
            Rule::ReadmissionFailed => "Q007-readmission-failed",
            Rule::ReconfigOverrun => "Q008-reconfig-overrun",
        }
    }

    /// The fixed severity of this rule's findings.
    pub fn severity(self) -> Severity {
        match self {
            Rule::FootprintSlots
            | Rule::BankInterference
            | Rule::PortInterference
            | Rule::ColumnBudget
            | Rule::DrainUnbounded
            | Rule::DemuxDiscontinuity
            | Rule::ReadmissionFailed => Severity::Error,
            Rule::ReconfigOverrun => Severity::Warning,
        }
    }

    /// Every rule, in code order.
    pub fn all() -> [Rule; 8] {
        [
            Rule::FootprintSlots,
            Rule::BankInterference,
            Rule::PortInterference,
            Rule::ColumnBudget,
            Rule::DrainUnbounded,
            Rule::DemuxDiscontinuity,
            Rule::ReadmissionFailed,
            Rule::ReconfigOverrun,
        ]
    }
}

impl RuleCode for Rule {
    fn code(&self) -> &'static str {
        Rule::code(*self)
    }
}

/// Hot-swap analysis knobs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SwapOptions {
    /// Banks in the resident fabric. `None` uses the smallest fabric
    /// covering every resident slot — the fabric that is actually
    /// scanning. `Some(n)` fixes it (e.g. to leave staging headroom).
    pub banks: Option<u32>,
    /// Fabric-wide counter/BV column budget; `None` uses the fabric's
    /// full column capacity.
    pub bv_column_budget: Option<u64>,
}

/// The certified drain bound for the outgoing tenant, in fabric cycles.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DrainBound {
    /// The outgoing tenant's certified maximum match span in bytes.
    pub span_bytes: u64,
    /// Bytes possibly admitted but unscanned at the swap offset: the
    /// B003 input-FIFO residency plus one ping-pong input page.
    pub window_bytes: u64,
    /// Match records to flush from the outgoing arrays' output FIFOs
    /// (the B002 worst-case occupancy), at one record per cycle.
    pub output_records: u64,
    /// Conservative per-byte cycle allowance: 1 plus the outgoing
    /// arrays' placed counter/BV columns (a bit-vector processing phase
    /// stalls intake at most one cycle per placed column).
    pub stall_allowance: u64,
    /// The bound: `(window + span) × allowance + records`.
    pub cycles: u64,
}

/// Reconfiguration cost of the swap, through the `rap-circuit` models.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ReconfigCost {
    /// Tiles reprogrammed (the replacement arrays' allocated tiles).
    pub tiles: u64,
    /// CAM row writes (32 rows per tile).
    pub cam_writes: u64,
    /// Local-switch SRAM row writes (128 rows per tile).
    pub switch_writes: u64,
    /// Cycles to reprogram: tiles program in parallel across arrays,
    /// serialized within an array by its local controller, one row
    /// write per cycle (CAM and switch write delays both fit the clock
    /// period).
    pub cycles: u64,
    /// Energy in picojoules: row writes plus per-tile local-controller
    /// and per-array global-controller transactions.
    pub energy_pj: f64,
}

/// A certified plan for one live partial reconfiguration.
#[derive(Clone, Debug)]
pub struct ReconfigPlan {
    /// The tenant leaving the fabric.
    pub outgoing: String,
    /// The tenant taking over the footprint.
    pub incoming: String,
    /// Banks in the fabric the swap was certified against.
    pub banks: u32,
    /// Slots the replacement occupies (reprogrammed during the swap).
    pub slots: Vec<u32>,
    /// Outgoing slots the replacement does not reuse (power-gated).
    pub freed_slots: Vec<u32>,
    /// The outgoing arrays, as indices into the **resident** composed
    /// mapping (the arrays that stop consuming and drain).
    pub retired_arrays: Vec<usize>,
    /// The replacement arrays, as indices into the **post-swap**
    /// composed mapping (the arrays that attach at the swap offset).
    pub fresh_arrays: Vec<usize>,
    /// The certified drain bound.
    pub drain: DrainBound,
    /// The reconfiguration cost.
    pub cost: ReconfigCost,
    /// The post-swap certificate: staying tenants keep their slots and
    /// match-ID ranges verbatim; the replacement owns the outgoing
    /// tenant's pattern window and match-ID base.
    pub composed: ComposedPlan,
}

/// Everything the hot-swap analyzer produces.
#[derive(Clone, Debug)]
pub struct SwapAnalysis {
    /// The Q-rule findings.
    pub report: Report,
    /// Names of the tenants that stay resident across the swap.
    pub staying: Vec<String>,
    /// The certificate: present exactly when no error was found.
    pub plan: Option<ReconfigPlan>,
}

impl SwapAnalysis {
    /// Whether the swap was certified.
    pub fn certified(&self) -> bool {
        self.plan.is_some()
    }
}

/// Counter/BV columns a set of images occupies (same accounting as
/// rap-admit's S004).
fn bv_columns(images: &[Compiled]) -> u64 {
    images
        .iter()
        .filter_map(|image| match image {
            Compiled::Nbva(c) => Some(
                c.bv_allocs
                    .iter()
                    .flatten()
                    .map(|a| u64::from(a.columns))
                    .sum::<u64>(),
            ),
            Compiled::Nfa(_) | Compiled::Lnfa(_) => None,
        })
        .sum()
}

/// Rewrites every pattern index in an array plan by a signed offset.
fn shift_array(plan: &ArrayPlan, delta: isize) -> ArrayPlan {
    let mut out = plan.clone();
    let shift = |p: usize| -> usize {
        usize::try_from(p as isize + delta).expect("pattern index stays non-negative")
    };
    match &mut out.kind {
        ArrayKind::Nfa { placements } | ArrayKind::Nbva { placements, .. } => {
            for p in placements {
                p.pattern = shift(p.pattern);
            }
        }
        ArrayKind::Lnfa { bins } => {
            for bin in bins {
                for m in &mut bin.members {
                    m.pattern = shift(m.pattern);
                }
            }
        }
    }
    out
}

/// Maps each occupied slot of a composed plan to its array index (the
/// composed mapping lists arrays in slot order).
fn slot_ranks(tenants: &[TenantSummary]) -> Vec<(u32, usize)> {
    let mut slots: Vec<u32> = tenants
        .iter()
        .flat_map(|t| t.slots.iter().copied())
        .collect();
    slots.sort_unstable();
    slots.into_iter().enumerate().map(|(r, s)| (s, r)).collect()
}

/// Array indices (into the composed mapping) of one tenant's slots.
fn tenant_arrays(tenants: &[TenantSummary], tenant: usize) -> Vec<usize> {
    let ranks = slot_ranks(tenants);
    let rank_of = |slot: u32| -> usize {
        ranks
            .iter()
            .find(|(s, _)| *s == slot)
            .expect("tenant slot is occupied")
            .1
    };
    let mut out: Vec<usize> = tenants[tenant].slots.iter().map(|&s| rank_of(s)).collect();
    out.sort_unstable();
    out
}

/// Statically analyzes replacing resident tenant `outgoing` with
/// `incoming` on the fabric the resident [`ComposedPlan`] occupies, and
/// certifies a [`ReconfigPlan`] when the swap is safe.
///
/// The `incoming` tenant's `match_base` and `slot` fields are ignored:
/// the analyzer pins the replacement to the outgoing tenant's match-ID
/// base (demux continuity) and to a contiguous run of freed/free slots
/// (footprint disjointness).
///
/// # Panics
///
/// Panics when the resident plan's summaries are inconsistent with its
/// mapping (not produced by `rap_admit::admit`).
pub fn analyze_swap(
    resident: &ComposedPlan,
    outgoing: &str,
    incoming: &rap_admit::Tenant<'_>,
    arch: &ArchConfig,
    options: &SwapOptions,
) -> SwapAnalysis {
    let mut report = Report::default();
    let staying_names: Vec<String> = resident
        .tenants
        .iter()
        .filter(|t| t.name != outgoing)
        .map(|t| t.name.clone())
        .collect();

    let Some(out_idx) = resident.tenants.iter().position(|t| t.name == outgoing) else {
        report.push(
            Rule::FootprintSlots,
            Rule::FootprintSlots.severity(),
            Location::default(),
            format!("tenant {outgoing:?} is not resident in the composition"),
        );
        return SwapAnalysis {
            report,
            staying: staying_names,
            plan: None,
        };
    };

    // Geometry: the replacement must have been mapped for the resident
    // fabric's shape (same contract as rap-admit's S001a).
    if incoming.mapping.config.arch != *arch || resident.mapping.config.arch != *arch {
        report.push(
            Rule::FootprintSlots,
            Rule::FootprintSlots.severity(),
            Location::default(),
            format!(
                "tenant {:?} was mapped for a different array geometry than \
                 the resident fabric",
                incoming.name
            ),
        );
    }
    if incoming.mapping.config.bvm != resident.mapping.config.bvm {
        report.push(
            Rule::FootprintSlots,
            Rule::FootprintSlots.severity(),
            Location::default(),
            "replacement was mapped with a different bit-vector-module \
             configuration than the resident composition"
                .to_string(),
        );
    }
    let need = incoming.mapping.arrays.len();
    if need == 0 || incoming.images.is_empty() {
        report.push(
            Rule::FootprintSlots,
            Rule::FootprintSlots.severity(),
            Location::default(),
            format!("replacement tenant {:?} carries no arrays", incoming.name),
        );
    }

    // The fabric under analysis: the smallest one covering every
    // resident slot, unless pinned. Live reconfiguration happens on the
    // fabric that is scanning — it does not grow mid-stream.
    let apb = arch.arrays_per_bank.max(1);
    let max_slot = resident
        .tenants
        .iter()
        .flat_map(|t| t.slots.iter().copied())
        .max()
        .unwrap_or(0);
    let banks = options
        .banks
        .unwrap_or_else(|| (max_slot + 1).div_ceil(apb).max(1));
    let slot_count = banks * apb;

    // Footprint: slots available to the replacement are the outgoing
    // tenant's (freed at quiescence) plus the fabric's free slots. The
    // replacement needs a contiguous run — preferring the freed base so
    // a same-shape update is a pure in-place reprogram.
    let freed: Vec<u32> = resident.tenants[out_idx].slots.clone();
    let staying_slots: Vec<u32> = resident
        .tenants
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != out_idx)
        .flat_map(|(_, t)| t.slots.iter().copied())
        .collect();
    let available = |slot: u32| slot < slot_count && !staying_slots.contains(&slot);
    let run_fits = |base: u32| (0..need as u32).all(|a| available(base + a));
    let base = freed
        .iter()
        .copied()
        .min()
        .filter(|&b| run_fits(b))
        .or_else(|| (0..slot_count).find(|&b| run_fits(b)));
    let Some(base) = base else {
        report.push(
            Rule::FootprintSlots,
            Rule::FootprintSlots.severity(),
            Location::default(),
            format!(
                "replacement tenant {:?} needs {need} contiguous slot(s) but \
                 the {slot_count}-slot fabric's freed+free set holds no such \
                 run (staying tenants hold {} slot(s))",
                incoming.name,
                staying_slots.len()
            ),
        );
        return SwapAnalysis {
            report,
            staying: staying_names,
            plan: None,
        };
    };
    let slots: Vec<u32> = (base..base + need as u32).collect();
    let freed_slots: Vec<u32> = freed
        .iter()
        .copied()
        .filter(|s| !slots.contains(s))
        .collect();

    // Drain bound: certified quantities of the *outgoing* sub-plan,
    // carved out of the resident composition (not re-derived from the
    // tenant's sources).
    let retired_arrays = tenant_arrays(&resident.tenants, out_idx);
    let outgoing_ex = extract_arrays(&resident.images, &resident.mapping, &retired_arrays);
    let span = max_match_span(&outgoing_ex.images);
    let drain = match span {
        None => {
            report.push(
                Rule::DrainUnbounded,
                Rule::DrainUnbounded.severity(),
                Location::default(),
                format!(
                    "outgoing tenant {outgoing:?} has an unbounded match span \
                     (cyclic automaton): its arrays cannot be certified to \
                     quiesce in bounded cycles"
                ),
            );
            None
        }
        Some(span) => {
            let out_bounds = analyze_bounds(
                &outgoing_ex.images,
                &[],
                &outgoing_ex.mapping,
                &BoundOptions::bounds_only(),
            );
            let window_bytes =
                out_bounds.bank.input_fifo_bytes + 2 * u64::from(arch.bank_input_entries);
            let output_records = out_bounds.bank.output_fifo_records;
            let stall_allowance = 1 + bv_columns(&outgoing_ex.images);
            let cycles = (window_bytes + span as u64) * stall_allowance + output_records;
            Some(DrainBound {
                span_bytes: span as u64,
                window_bytes,
                output_records,
                stall_allowance,
                cycles,
            })
        }
    };

    // Demux continuity: the replacement inherits the outgoing match-ID
    // base so staying tenants' namespaces survive verbatim; the
    // inherited range must not collide with a staying range.
    let in_base = resident.tenants[out_idx].match_ids.0;
    let in_ids = (in_base, in_base + incoming.images.len() as u64);
    for (i, t) in resident.tenants.iter().enumerate() {
        if i == out_idx {
            continue;
        }
        if in_ids.0 < t.match_ids.1 && t.match_ids.0 < in_ids.1 {
            report.push(
                Rule::DemuxDiscontinuity,
                Rule::DemuxDiscontinuity.severity(),
                Location::default(),
                format!(
                    "replacement match-ID range [{}, {}) (inherited from \
                     {outgoing:?} for demux continuity) collides with staying \
                     tenant {:?} [{}, {})",
                    in_ids.0, in_ids.1, t.name, t.match_ids.0, t.match_ids.1
                ),
            );
        }
    }

    // Interference delta: staying loads from ONE bound pass over the
    // resident composition; only the replacement's solo bounds are new.
    let resident_bounds = analyze_bounds(
        &resident.images,
        &[],
        &resident.mapping,
        &BoundOptions::bounds_only(),
    );
    let incoming_bounds = analyze_bounds(
        incoming.images,
        &[],
        incoming.mapping,
        &BoundOptions::bounds_only(),
    );
    let ranks = slot_ranks(&resident.tenants);
    let rank_of = |slot: u32| ranks.iter().find(|(s, _)| *s == slot).map(|&(_, r)| r);
    for bank in 0..banks {
        let lo = bank * apb;
        let hi = lo + apb;
        let mut lanes = 0u64;
        let mut burst = 0u64;
        let mut fanin = 0u64;
        let mut residents: Vec<usize> = Vec::new();
        for (i, t) in resident.tenants.iter().enumerate() {
            if i == out_idx {
                continue;
            }
            for &slot in t.slots.iter().filter(|&&s| s >= lo && s < hi) {
                let rank = rank_of(slot).expect("staying slot is occupied");
                let bound = &resident_bounds.arrays[rank];
                lanes += 1;
                burst += bound.reporters;
                fanin += u64::from(bound.peak_fanin);
                if !residents.contains(&i) {
                    residents.push(i);
                }
            }
        }
        for (a, &slot) in slots.iter().enumerate() {
            if slot >= lo && slot < hi {
                let bound = &incoming_bounds.arrays[a];
                lanes += 1;
                burst += bound.reporters;
                fanin += u64::from(bound.peak_fanin);
                if !residents.contains(&usize::MAX) {
                    residents.push(usize::MAX);
                }
            }
        }
        if residents.len() < 2 {
            continue; // single-tenant banks reproduce solo behaviour
        }
        let capacity =
            lanes * u64::from(arch.array_output_entries) + u64::from(arch.bank_output_entries);
        if burst > capacity {
            report.push(
                Rule::BankInterference,
                Rule::BankInterference.severity(),
                Location::default(),
                format!(
                    "bank {bank}: post-swap worst-case burst of {burst} match \
                     record(s) exceeds the {capacity}-record output capacity"
                ),
            );
        }
        let fanin_budget = u64::from(apb) * u64::from(arch.global_ports_per_tile);
        if fanin_budget > 0 && fanin > fanin_budget {
            report.push(
                Rule::PortInterference,
                Rule::PortInterference.severity(),
                Location::default(),
                format!(
                    "bank {bank}: post-swap summed global-switch fan-in \
                     {fanin} exceeds the {fanin_budget}-port bank budget"
                ),
            );
        }
    }

    // Column budget delta.
    let out_lo = resident.tenants[out_idx].pattern_range.0;
    let out_hi = resident.tenants[out_idx].pattern_range.1;
    let outgoing_bv = bv_columns(&resident.images[out_lo..out_hi]);
    let post_bv = bv_columns(&resident.images) - outgoing_bv + bv_columns(incoming.images);
    let bv_budget = options.bv_column_budget.unwrap_or_else(|| {
        u64::from(slot_count) * u64::from(arch.tiles_per_array) * u64::from(arch.tile_columns)
    });
    if post_bv > bv_budget {
        report.push(
            Rule::ColumnBudget,
            Rule::ColumnBudget.severity(),
            Location::default(),
            format!(
                "post-swap composition requests {post_bv} counter/BV \
                 column(s) but the fabric budget is {bv_budget}"
            ),
        );
    }

    // Reconfiguration cost through the circuit models.
    let tiles: u64 = incoming
        .mapping
        .arrays
        .iter()
        .map(|a| u64::from(a.tiles_used))
        .sum();
    let max_array_tiles: u64 = incoming
        .mapping
        .arrays
        .iter()
        .map(|a| u64::from(a.tiles_used))
        .max()
        .unwrap_or(0);
    let cam_writes = tiles * 32;
    let switch_writes = tiles * 128;
    let cost = ReconfigCost {
        tiles,
        cam_writes,
        switch_writes,
        cycles: max_array_tiles * (32 + 128) + 1,
        energy_pj: cam_writes as f64 * CAM_32X128.access_energy_pj(1.0)
            + switch_writes as f64 * SRAM_128X128.access_energy_pj(1.0)
            + tiles as f64 * LOCAL_CONTROLLER.access_energy_pj(1.0)
            + incoming.mapping.arrays.len() as f64 * GLOBAL_CONTROLLER.access_energy_pj(1.0),
    };
    if let Some(d) = &drain {
        if cost.cycles > d.cycles {
            report.push(
                Rule::ReconfigOverrun,
                Rule::ReconfigOverrun.severity(),
                Location::default(),
                format!(
                    "reprogramming the footprint takes {} cycle(s) but the \
                     certified drain window is {}: the swap slots idle for {} \
                     extra cycle(s)",
                    cost.cycles,
                    d.cycles,
                    cost.cycles - d.cycles
                ),
            );
        }
    }

    if !report.is_legal() {
        return SwapAnalysis {
            report,
            staying: staying_names,
            plan: None,
        };
    }
    let drain = drain.expect("legal report implies a bounded drain");

    // Splice the certificate: staying tenants keep arrays, slots, and
    // match IDs verbatim (pattern indices shift only for tenants whose
    // window sits after the outgoing one); the replacement fills the
    // outgoing pattern window.
    let n_in = incoming.images.len();
    let delta = n_in as isize - (out_hi - out_lo) as isize;
    let mut images: Vec<Compiled> = Vec::with_capacity(resident.images.len());
    images.extend_from_slice(&resident.images[..out_lo]);
    images.extend(incoming.images.iter().cloned());
    images.extend_from_slice(&resident.images[out_hi..]);

    // Build the post-swap occupancy: (slot, array plan) pairs.
    let mut placed: Vec<(u32, ArrayPlan)> = Vec::new();
    for (i, t) in resident.tenants.iter().enumerate() {
        if i == out_idx {
            continue;
        }
        let arrays = tenant_arrays(&resident.tenants, i);
        let shift = if t.pattern_range.0 >= out_hi {
            delta
        } else {
            0
        };
        for (&slot, &rank) in t.slots.iter().zip(arrays.iter()) {
            placed.push((slot, shift_array(&resident.mapping.arrays[rank], shift)));
        }
    }
    for (a, &slot) in slots.iter().enumerate() {
        placed.push((
            slot,
            shift_array(&incoming.mapping.arrays[a], out_lo as isize),
        ));
    }
    placed.sort_by_key(|(slot, _)| *slot);
    let mapping = Mapping {
        arrays: placed.into_iter().map(|(_, p)| p).collect(),
        config: rap_mapper::MapperConfig {
            arch: *arch,
            bin_size: resident
                .mapping
                .config
                .bin_size
                .max(incoming.mapping.config.bin_size),
            bvm: resident.mapping.config.bvm,
            validate: false,
        },
    };

    // Post-swap summaries: resident order, replacement in the outgoing
    // tenant's position.
    let occupied_after = staying_slots.len() + need;
    let free_after = u64::from(slot_count).saturating_sub(occupied_after as u64);
    let tenants: Vec<TenantSummary> = resident
        .tenants
        .iter()
        .enumerate()
        .map(|(i, t)| {
            if i == out_idx {
                TenantSummary {
                    name: incoming.name.to_string(),
                    patterns: n_in,
                    arrays: need,
                    pattern_range: (out_lo, out_lo + n_in),
                    match_ids: in_ids,
                    slots: slots.clone(),
                    hot_swappable: need as u64 <= free_after,
                }
            } else {
                let (lo, hi) = t.pattern_range;
                let shift = if lo >= out_hi { delta } else { 0 };
                TenantSummary {
                    pattern_range: (
                        usize::try_from(lo as isize + shift).expect("range stays non-negative"),
                        usize::try_from(hi as isize + shift).expect("range stays non-negative"),
                    ),
                    hot_swappable: t.arrays as u64 <= free_after,
                    ..t.clone()
                }
            }
        })
        .collect();

    // Re-admission gate: the spliced plan must pass the same static
    // verifier every solo plan passes before simulation.
    let verdict = rap_verify::verify(&images, &mapping, arch);
    if !verdict.is_legal() {
        report.push(
            Rule::ReadmissionFailed,
            Rule::ReadmissionFailed.severity(),
            Location::default(),
            format!(
                "spliced post-swap composition fails the verify gate with {} \
                 finding(s)",
                verdict.len()
            ),
        );
        return SwapAnalysis {
            report,
            staying: staying_names,
            plan: None,
        };
    }

    let composed = ComposedPlan {
        images,
        mapping,
        tenants,
    };
    let fresh_arrays = {
        let idx = composed
            .tenants
            .iter()
            .position(|t| t.name == incoming.name)
            .expect("replacement is in the post-swap summaries");
        tenant_arrays(&composed.tenants, idx)
    };
    SwapAnalysis {
        report,
        staying: staying_names,
        plan: Some(ReconfigPlan {
            outgoing: outgoing.to_string(),
            incoming: incoming.name.to_string(),
            banks,
            slots,
            freed_slots,
            retired_arrays,
            fresh_arrays,
            drain,
            cost,
            composed,
        }),
    }
}

/// Per-tenant match streams of one executed hot swap.
#[derive(Clone, Debug)]
pub struct SwapExecution {
    /// Staying tenants' full-stream matches (tenant-local pattern
    /// indices, global end offsets), in resident order.
    pub staying: Vec<(String, Vec<MatchEvent>)>,
    /// The outgoing tenant's matches, all ending at or before the swap
    /// offset.
    pub outgoing: Vec<MatchEvent>,
    /// The replacement tenant's post-swap matches (global offsets).
    pub incoming: Vec<MatchEvent>,
    /// Cycles the retired arrays needed beyond the swap offset.
    pub observed_drain_cycles: u64,
    /// Cycle at which the swap window closed.
    pub quiesce_cycle: u64,
}

/// Spends a certificate: applies `plan` to the resident composition
/// mid-stream at byte offset `swap_at` through `rap-sim`'s partial
/// reconfiguration mechanism, and demultiplexes the result per tenant.
///
/// # Panics
///
/// Panics when `swap_at` exceeds the input length or `plan` was not
/// produced for `resident`.
pub fn execute(
    plan: &ReconfigPlan,
    resident: &ComposedPlan,
    input: &[u8],
    swap_at: usize,
    machine: Machine,
    telemetry: Option<(&Telemetry, &str)>,
) -> SwapExecution {
    let run = simulate_hot_swap(
        &resident.images,
        &resident.mapping,
        &plan.retired_arrays,
        &plan.composed.images,
        &plan.composed.mapping,
        &plan.fresh_arrays,
        input,
        swap_at,
        machine,
        telemetry,
    );
    let out_idx = resident
        .tenants
        .iter()
        .position(|t| t.name == plan.outgoing)
        .expect("plan's outgoing tenant is resident");
    let staying = resident
        .tenants
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != out_idx)
        .map(|(i, t)| (t.name.clone(), resident.tenant_matches(i, &run.pre_matches)))
        .collect();
    let outgoing = resident.tenant_matches(out_idx, &run.pre_matches);
    let in_idx = plan
        .composed
        .tenants
        .iter()
        .position(|t| t.name == plan.incoming)
        .expect("plan's replacement is in the certificate");
    let incoming = plan.composed.tenant_matches(in_idx, &run.fresh_matches);
    SwapExecution {
        staying,
        outgoing,
        incoming,
        observed_drain_cycles: run.observed_drain_cycles,
        quiesce_cycle: run.quiesce_cycle,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rap_admit::{admit, AdmitOptions, Tenant};
    use rap_compiler::{Compiler, CompilerConfig};
    use rap_mapper::{map_workload, MapperConfig};
    use rap_regex::Pattern;

    struct Owned {
        name: String,
        images: Vec<Compiled>,
        patterns: Vec<Pattern>,
        mapping: Mapping,
    }

    fn owned(name: &str, sources: &[&str], config: &MapperConfig) -> Owned {
        let compiler = Compiler::new(CompilerConfig::default());
        let patterns: Vec<Pattern> = sources
            .iter()
            .map(|s| rap_regex::parse_pattern(s).expect("parses"))
            .collect();
        let images: Vec<Compiled> = patterns
            .iter()
            .map(|p| compiler.compile_anchored(p).expect("compiles"))
            .collect();
        let mapping = map_workload(&images, config);
        Owned {
            name: name.to_string(),
            images,
            patterns,
            mapping,
        }
    }

    fn view(o: &Owned) -> Tenant<'_> {
        Tenant {
            name: &o.name,
            images: &o.images,
            patterns: &o.patterns,
            mapping: &o.mapping,
            match_base: None,
            slot: None,
        }
    }

    fn compose(tenants: &[&Owned], config: &MapperConfig) -> ComposedPlan {
        let views: Vec<Tenant<'_>> = tenants.iter().map(|o| view(o)).collect();
        let analysis = admit(&views, &config.arch, &AdmitOptions::default());
        assert!(analysis.admitted(), "{}", analysis.report);
        analysis.composed.expect("certified")
    }

    #[test]
    fn rule_codes_are_stable() {
        let codes: Vec<&str> = Rule::all().iter().map(|r| r.code()).collect();
        assert_eq!(codes[0], "Q001-footprint-slots");
        assert_eq!(codes.len(), 8);
        for w in codes.windows(2) {
            assert!(w[0] < w[1], "codes out of order: {w:?}");
        }
    }

    #[test]
    fn same_shape_swap_certifies_in_place() {
        let config = MapperConfig::default();
        let a = owned("alpha", &["needle", "b{3,9}c"], &config);
        let b = owned("bravo", &["haystack"], &config);
        let resident = compose(&[&a, &b], &config);
        let c = owned("charlie", &["beacon"], &config);
        let analysis = analyze_swap(
            &resident,
            "bravo",
            &view(&c),
            &config.arch,
            &SwapOptions::default(),
        );
        assert!(analysis.certified(), "{}", analysis.report);
        let plan = analysis.plan.expect("certified");
        // Same shape: the replacement reuses the freed base in place.
        let bravo = resident.tenants.iter().find(|t| t.name == "bravo").unwrap();
        assert_eq!(plan.slots[0], bravo.slots[0]);
        assert_eq!(plan.drain.span_bytes, "haystack".len() as u64);
        assert!(plan.drain.cycles > 0);
        assert!(plan.cost.tiles > 0);
        // Staying tenant's slots and match IDs survive verbatim.
        let alpha_pre = resident.tenants.iter().find(|t| t.name == "alpha").unwrap();
        let alpha_post = plan
            .composed
            .tenants
            .iter()
            .find(|t| t.name == "alpha")
            .unwrap();
        assert_eq!(alpha_pre.slots, alpha_post.slots);
        assert_eq!(alpha_pre.match_ids, alpha_post.match_ids);
    }

    #[test]
    fn executed_swap_keeps_staying_tenants_bit_identical() {
        let config = MapperConfig::default();
        let a = owned("alpha", &["needle", "ne+dle"], &config);
        let b = owned("bravo", &["haystack"], &config);
        let resident = compose(&[&a, &b], &config);
        let c = owned("charlie", &["beacon"], &config);
        let analysis = analyze_swap(
            &resident,
            "bravo",
            &view(&c),
            &config.arch,
            &SwapOptions::default(),
        );
        let plan = analysis.plan.expect("certified");
        let input = b"a needle in the haystack, then a beacon, then a neeedle".to_vec();
        let swap_at = 25;
        let exec = execute(&plan, &resident, &input, swap_at, Machine::Rap, None);

        // Staying tenant: bit-identical to the unswapped composed run.
        let unswapped =
            rap_sim::simulate(&resident.images, &resident.mapping, &input, Machine::Rap);
        let alpha_idx = resident
            .tenants
            .iter()
            .position(|t| t.name == "alpha")
            .unwrap();
        let want = resident.tenant_matches(alpha_idx, &unswapped.matches);
        let got = &exec.staying.iter().find(|(n, _)| n == "alpha").unwrap().1;
        assert_eq!(got, &want);

        // Replacement: bit-identical to a cold re-admitted composition
        // over the post-swap suffix.
        let cold = compose(&[&a, &c], &config);
        let cold_run =
            rap_sim::simulate(&cold.images, &cold.mapping, &input[swap_at..], Machine::Rap);
        let c_idx = cold
            .tenants
            .iter()
            .position(|t| t.name == "charlie")
            .unwrap();
        let mut want_in = cold.tenant_matches(c_idx, &cold_run.matches);
        for m in &mut want_in {
            m.end += swap_at;
        }
        assert_eq!(exec.incoming, want_in);

        // Outgoing tenant reports only before the swap.
        assert!(exec.outgoing.iter().all(|m| m.end <= swap_at));
    }

    #[test]
    fn unbounded_span_rejects_with_q005() {
        let config = MapperConfig::default();
        let a = owned("alpha", &["needle"], &config);
        let b = owned("bravo", &["x.*y"], &config);
        let resident = compose(&[&a, &b], &config);
        let c = owned("charlie", &["beacon"], &config);
        let analysis = analyze_swap(
            &resident,
            "bravo",
            &view(&c),
            &config.arch,
            &SwapOptions::default(),
        );
        assert!(!analysis.certified());
        assert!(!analysis.report.by_rule(Rule::DrainUnbounded).is_empty());
    }

    #[test]
    fn oversized_replacement_rejects_with_q001() {
        let config = MapperConfig::default();
        let a = owned("alpha", &["needle"], &config);
        let b = owned("bravo", &["haystack"], &config);
        let resident = compose(&[&a, &b], &config);
        // Many patterns -> more arrays than the freed+free footprint on
        // the minimal resident fabric.
        let sources: Vec<String> = (0..64).map(|i| format!("pattern{i:03}xyz")).collect();
        let refs: Vec<&str> = sources.iter().map(String::as_str).collect();
        let big = owned("charlie", &refs, &config);
        let analysis = analyze_swap(
            &resident,
            "bravo",
            &view(&big),
            &config.arch,
            &SwapOptions::default(),
        );
        if big.mapping.arrays.len() > resident.mapping.arrays.len() {
            assert!(!analysis.certified());
            assert!(!analysis.report.by_rule(Rule::FootprintSlots).is_empty());
        }
    }

    #[test]
    fn missing_outgoing_tenant_rejects_with_q001() {
        let config = MapperConfig::default();
        let a = owned("alpha", &["needle"], &config);
        let b = owned("bravo", &["haystack"], &config);
        let resident = compose(&[&a, &b], &config);
        let c = owned("charlie", &["beacon"], &config);
        let analysis = analyze_swap(
            &resident,
            "nobody",
            &view(&c),
            &config.arch,
            &SwapOptions::default(),
        );
        assert!(!analysis.certified());
        assert!(!analysis.report.by_rule(Rule::FootprintSlots).is_empty());
        assert_eq!(analysis.staying.len(), 2);
    }
}
