//! Property tests for the hot-swap certificate, checked end to end
//! against the cycle-accurate simulator:
//!
//! * **Staying tenants are untouched** — for random tenancies and
//!   random swap points, every staying tenant's demultiplexed match
//!   stream across the executed swap is bit-identical to an unswapped
//!   run of the resident composition.
//! * **The replacement behaves as if cold-admitted** — the swapped-in
//!   tenant's post-swap matches are bit-identical to a cold re-admitted
//!   composition scanned over the post-swap suffix.
//! * **Rejections are diagnosed** — every rejected swap carries at
//!   least one Q finding.

use proptest::prelude::*;
use rap_admit::{admit, AdmitOptions, Tenant};
use rap_arch::config::ArchConfig;
use rap_circuit::Machine;
use rap_compiler::{Compiled, Compiler, CompilerConfig};
use rap_mapper::{map_workload, MapperConfig, Mapping};
use rap_regex::Pattern;
use rap_swap::{analyze_swap, execute, SwapOptions};

/// One tenant's owned plan parts.
struct Owned {
    name: String,
    images: Vec<Compiled>,
    patterns: Vec<Pattern>,
    mapping: Mapping,
}

fn owned(name: String, sources: &[&str]) -> Owned {
    let compiler = Compiler::new(CompilerConfig::default());
    let patterns: Vec<Pattern> = sources
        .iter()
        .map(|s| rap_regex::parse_pattern(s).expect("pool patterns parse"))
        .collect();
    let images: Vec<Compiled> = patterns
        .iter()
        .map(|p| compiler.compile_anchored(p).expect("pool patterns compile"))
        .collect();
    let mapping = map_workload(&images, &MapperConfig::default());
    Owned {
        name,
        images,
        patterns,
        mapping,
    }
}

fn view(o: &Owned) -> Tenant<'_> {
    Tenant {
        name: &o.name,
        images: &o.images,
        patterns: &o.patterns,
        mapping: &o.mapping,
        match_base: None,
        slot: None,
    }
}

/// Compile-safe bounded-span sources covering all three array modes.
const POOL: [&str; 8] = [
    "abc", "a[ab]c", "ab", "ba+c", "c{3,9}a", "a.{2,6}b", "cab", "b[abc]a",
];

fn arb_sources() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(0..POOL.len(), 1..4)
}

/// 2–4 resident tenants, a replacement, which resident leaves, and a
/// swap-point selector.
fn arb_swap() -> impl Strategy<Value = (Vec<Vec<usize>>, Vec<usize>, usize, usize)> {
    (
        prop::collection::vec(arb_sources(), 2..5),
        arb_sources(),
        0..4usize,
        0..121usize,
    )
}

fn build(tenancies: &[Vec<usize>]) -> Vec<Owned> {
    tenancies
        .iter()
        .enumerate()
        .map(|(i, picks)| {
            let sources: Vec<&str> = picks.iter().map(|&p| POOL[p]).collect();
            owned(format!("tenant-{}", (b'z' - i as u8) as char), &sources)
        })
        .collect()
}

fn arb_input() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(
        prop_oneof![4 => Just(b'a'), 4 => Just(b'b'), 4 => Just(b'c'), 1 => Just(b'x')],
        0..120,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Certified swaps keep every staying tenant's match stream
    /// bit-identical to an unswapped run, and make the replacement
    /// bit-identical to a cold re-admitted composition over the suffix.
    #[test]
    fn executed_swaps_preserve_staying_and_cold_equivalence(
        scenario in arb_swap(),
        input in arb_input(),
    ) {
        let (tenancies, replacement, leave, at) = scenario;
        let arch = ArchConfig::default();
        let solos = build(&tenancies);
        let views: Vec<Tenant<'_>> = solos.iter().map(view).collect();
        let analysis = admit(&views, &arch, &AdmitOptions::default());
        let resident = analysis.composed.as_ref().expect("auto fabric admits");

        let sources: Vec<&str> = replacement.iter().map(|&p| POOL[p]).collect();
        let incoming = owned("tenant-incoming".to_string(), &sources);
        let outgoing = resident.tenants[leave % resident.tenants.len()].name.clone();
        let swap = analyze_swap(resident, &outgoing, &view(&incoming), &arch, &SwapOptions::default());

        let Some(plan) = &swap.plan else {
            // Every rejection carries at least one Q finding.
            prop_assert!(!swap.report.is_empty(), "rejected swap with no finding");
            return Ok(());
        };
        let swap_at = at % (input.len() + 1);
        let exec = execute(plan, resident, &input, swap_at, Machine::Rap, None);

        // Staying tenants: bit-identical to the unswapped resident run.
        let unswapped = rap_sim::simulate(
            &resident.images, &resident.mapping, &input, Machine::Rap,
        );
        for (name, got) in &exec.staying {
            let idx = resident
                .tenants
                .iter()
                .position(|t| &t.name == name)
                .expect("staying tenant is resident");
            let want = resident.tenant_matches(idx, &unswapped.matches);
            prop_assert_eq!(
                got, &want,
                "staying tenant {} observed the swap", name
            );
        }

        // Replacement: bit-identical to a cold re-admitted composition
        // over the post-swap suffix.
        let mut cold_views: Vec<Tenant<'_>> = solos
            .iter()
            .filter(|o| o.name != outgoing)
            .map(view)
            .collect();
        cold_views.push(view(&incoming));
        let cold_analysis = admit(&cold_views, &arch, &AdmitOptions::default());
        let cold = cold_analysis.composed.as_ref().expect("cold fabric admits");
        let cold_run = rap_sim::simulate(
            &cold.images, &cold.mapping, &input[swap_at..], Machine::Rap,
        );
        let cold_idx = cold
            .tenants
            .iter()
            .position(|t| t.name == "tenant-incoming")
            .expect("replacement admitted cold");
        let mut want = cold.tenant_matches(cold_idx, &cold_run.matches);
        for m in &mut want {
            m.end += swap_at;
        }
        prop_assert_eq!(&exec.incoming, &want, "replacement diverges from cold admission");

        // The outgoing tenant never reports past the swap point.
        prop_assert!(exec.outgoing.iter().all(|m| m.end <= swap_at));
    }

    /// Unboundable or unplaceable swaps are rejected with Q findings,
    /// never silently certified.
    #[test]
    fn rejections_always_carry_findings(
        picks in arb_sources(),
        input_len in 0..64usize,
    ) {
        let _ = input_len;
        let arch = ArchConfig::default();
        let a = owned("tenant-a".to_string(), &["abc"]);
        // Unbounded span: no drain certificate can exist.
        let b = owned("tenant-b".to_string(), &["a.*b"]);
        let views = [view(&a), view(&b)];
        let analysis = admit(&views, &arch, &AdmitOptions::default());
        let resident = analysis.composed.as_ref().expect("admits");
        let sources: Vec<&str> = picks.iter().map(|&p| POOL[p]).collect();
        let incoming = owned("tenant-incoming".to_string(), &sources);
        let swap = analyze_swap(
            resident, "tenant-b", &view(&incoming), &arch, &SwapOptions::default(),
        );
        prop_assert!(!swap.certified());
        prop_assert!(
            !swap.report.by_rule(rap_swap::Rule::DrainUnbounded).is_empty(),
            "unbounded outgoing span must raise Q005"
        );
    }
}
