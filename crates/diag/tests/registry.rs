//! Cross-crate rule-code registry test.
//!
//! Every diagnostic family in the workspace — the V-rules of the
//! placement verifier, the A-rules of the IR analyzer, the B-rules of
//! the bounds analyzer, the C-rules of the store-health check, the
//! S-rules of the multi-tenant admission analyzer, the R-rules of the
//! streaming scan service, the Q-rules of the hot-swap safety analyzer
//! — shares the `rap-diag` report machinery, and their codes land in
//! one global namespace (CLI JSON, CSV artifacts, CI logs). This test
//! pins the registry invariants:
//!
//! * codes are globally unique across all families,
//! * every code has the stable `^[VABCSRQ][0-9]{3}-[a-z0-9-]+$` shape,
//!   with the family prefix matching its crate,
//! * numbering within a family is dense, 1-based, and in `all()` order
//!   (codes are append-only; renumbering breaks downstream consumers),
//! * every code is documented in `DESIGN.md`.

use rap_diag::RuleCode;
use std::collections::BTreeSet;

const DESIGN: &str = include_str!("../../../DESIGN.md");

/// Collects one family's codes via the shared `RuleCode` trait.
fn codes<R: RuleCode>(rules: &[R]) -> Vec<&'static str> {
    rules.iter().map(RuleCode::code).collect()
}

fn families() -> Vec<(char, Vec<&'static str>)> {
    vec![
        ('V', codes(rap_verify::Rule::all())),
        ('A', codes(&rap_analyze::Rule::all())),
        ('B', codes(&rap_bound::Rule::all())),
        ('C', codes(&rap_cli::commands::cache::CacheRule::all())),
        ('S', codes(&rap_admit::Rule::all())),
        ('R', codes(&rap_serve::Rule::all())),
        ('Q', codes(&rap_swap::Rule::all())),
    ]
}

/// `code` matches `^[VABCSRQ][0-9]{3}-[a-z0-9-]+$`.
fn well_formed(code: &str) -> bool {
    let bytes = code.as_bytes();
    bytes.len() > 5
        && matches!(bytes[0], b'V' | b'A' | b'B' | b'C' | b'S' | b'R' | b'Q')
        && bytes[1..4].iter().all(u8::is_ascii_digit)
        && bytes[4] == b'-'
        && bytes[5..]
            .iter()
            .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || *b == b'-')
        && bytes[5..].first() != Some(&b'-')
        && bytes.last() != Some(&b'-')
}

#[test]
fn codes_are_globally_unique() {
    let mut seen = BTreeSet::new();
    for (family, codes) in families() {
        for code in codes {
            assert!(seen.insert(code), "duplicate rule code {code} ({family})");
            // Numeric prefixes must not collide across families either —
            // the letter is the namespace, so this is belt and braces for
            // accidental copy-paste of a whole code.
            let duplicated = seen
                .iter()
                .filter(|c| c[1..4] == code[1..4] && c.starts_with(family))
                .count();
            assert_eq!(duplicated, 1, "number {} reused in {family}", &code[1..4]);
        }
    }
    assert!(seen.len() >= 53, "registry lost codes: {seen:?}");
}

#[test]
fn codes_are_stable_and_well_formed() {
    for (family, codes) in families() {
        for (i, code) in codes.iter().enumerate() {
            assert!(well_formed(code), "malformed rule code {code:?}");
            assert!(
                code.starts_with(family),
                "{code} listed under family {family}"
            );
            // Dense 1-based numbering in all() order: all() drives docs
            // and CLI listings, so order drift is silent breakage.
            let expected = format!("{family}{:03}", i + 1);
            assert!(
                code.starts_with(&expected),
                "{code} out of sequence (expected prefix {expected})"
            );
        }
    }
}

#[test]
fn every_code_is_documented_in_design_md() {
    for (_, codes) in families() {
        for code in codes {
            assert!(
                DESIGN.contains(code),
                "rule {code} is not documented in DESIGN.md"
            );
        }
    }
}
