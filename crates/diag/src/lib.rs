//! Shared structured-diagnostics machinery for the RAP lint families.
//!
//! Both rule families — the mapping legality verifier (`rap-verify`,
//! `V001`…) and the compiled-automata static analyzer (`rap-analyze`,
//! `A001`…) — emit findings through the types here, so `rap lint --json`
//! and `rap analyze --json` share one JSON schema:
//!
//! ```json
//! {"legal": true, "findings": [{"rule": "V001-bv-depth", "severity":
//!  "warning", "array": 0, "pattern": null, "state": null, "tile": null,
//!  "bin": null, "message": "…"}]}
//! ```
//!
//! The rule enums themselves stay in their home crates (they document the
//! checks); this crate is generic over any type implementing [`RuleCode`].

use serde::{Deserialize, Serialize};
use std::fmt;

/// A rule identifier with a stable, append-only diagnostic code such as
/// `"V001-bv-depth"` or `"A002-dead-state"`.
pub trait RuleCode: Copy + Eq + fmt::Debug {
    /// The stable code string used in reports, tests, and JSON output.
    fn code(&self) -> &'static str;
}

/// How bad a finding is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Severity {
    /// Advisory only; the artifact is legal.
    Info,
    /// Suspicious but executable; worth a look.
    Warning,
    /// The artifact violates an invariant and must not be trusted.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// Where a finding points: any subset of array / pattern / state / tile /
/// bin indices. The mapping verifier fills array/tile/bin; the automata
/// analyzer fills pattern/state.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Location {
    /// Array index in `Mapping::arrays`.
    pub array: Option<usize>,
    /// Pattern index in the workload.
    pub pattern: Option<usize>,
    /// State index within the compiled automaton.
    pub state: Option<u32>,
    /// Tile index within the array.
    pub tile: Option<u32>,
    /// Bin index within an LNFA array.
    pub bin: Option<usize>,
}

impl Location {
    /// A location naming only an array.
    pub fn array(array: usize) -> Location {
        Location {
            array: Some(array),
            ..Location::default()
        }
    }

    /// A location naming only a pattern (the analyzer's usual anchor).
    pub fn of_pattern(pattern: usize) -> Location {
        Location {
            pattern: Some(pattern),
            ..Location::default()
        }
    }

    /// Adds the pattern index.
    #[must_use]
    pub fn pattern(mut self, pattern: usize) -> Location {
        self.pattern = Some(pattern);
        self
    }

    /// Adds the state index.
    #[must_use]
    pub fn state(mut self, state: u32) -> Location {
        self.state = Some(state);
        self
    }

    /// Adds the tile index.
    #[must_use]
    pub fn tile(mut self, tile: u32) -> Location {
        self.tile = Some(tile);
        self
    }

    /// Adds the bin index.
    #[must_use]
    pub fn bin(mut self, bin: usize) -> Location {
        self.bin = Some(bin);
        self
    }
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut sep = "";
        for (name, value) in [
            ("array", self.array.map(|v| v as u64)),
            ("pattern", self.pattern.map(|v| v as u64)),
            ("state", self.state.map(u64::from)),
            ("tile", self.tile.map(u64::from)),
            ("bin", self.bin.map(|v| v as u64)),
        ] {
            if let Some(v) = value {
                write!(f, "{sep}{name} {v}")?;
                sep = ", ";
            }
        }
        if sep.is_empty() {
            f.write_str("mapping")?;
        }
        Ok(())
    }
}

/// One finding.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Diagnostic<R> {
    /// The violated (or advisory) rule.
    pub rule: R,
    /// How bad it is.
    pub severity: Severity,
    /// Where it points.
    pub location: Location,
    /// Human-readable explanation with the offending numbers.
    pub message: String,
}

impl<R: RuleCode> fmt::Display for Diagnostic<R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] at {}: {}",
            self.severity,
            self.rule.code(),
            self.location,
            self.message
        )
    }
}

/// A lint run's output: every finding, in check order.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Report<R> {
    /// The findings.
    pub diagnostics: Vec<Diagnostic<R>>,
}

// Manual impl: `derive(Default)` would demand `R: Default`.
impl<R> Default for Report<R> {
    fn default() -> Self {
        Report {
            diagnostics: Vec::new(),
        }
    }
}

impl<R: RuleCode> Report<R> {
    /// `true` when no *error* was found — the artifact is legal to use
    /// (warnings and infos may still be present).
    pub fn is_legal(&self) -> bool {
        self.diagnostics
            .iter()
            .all(|d| d.severity != Severity::Error)
    }

    /// `true` when nothing at all was reported.
    pub fn is_empty(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Number of findings.
    pub fn len(&self) -> usize {
        self.diagnostics.len()
    }

    /// The error findings.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic<R>> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    /// The findings for one rule (handy in tests).
    pub fn by_rule(&self, rule: R) -> Vec<&Diagnostic<R>> {
        self.diagnostics.iter().filter(|d| d.rule == rule).collect()
    }

    /// Records a finding.
    pub fn push(&mut self, rule: R, severity: Severity, location: Location, message: String) {
        self.diagnostics.push(Diagnostic {
            rule,
            severity,
            location,
            message,
        });
    }

    /// Appends every finding of `other`.
    pub fn merge(&mut self, other: Report<R>) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// Renders the report in the shared machine-readable JSON schema
    /// (`rap lint --json` / `rap analyze --json`): an object with `legal`
    /// and a `findings` array whose entries carry the rule code, severity,
    /// the five optional location indices, and the message.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\"legal\": ");
        s.push_str(if self.is_legal() { "true" } else { "false" });
        s.push_str(", \"findings\": [");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!(
                "{{\"rule\": \"{}\", \"severity\": \"{}\", \"array\": {}, \
                 \"pattern\": {}, \"state\": {}, \"tile\": {}, \"bin\": {}, \
                 \"message\": \"{}\"}}",
                d.rule.code(),
                d.severity,
                json_opt(d.location.array.map(|v| v as u64)),
                json_opt(d.location.pattern.map(|v| v as u64)),
                json_opt(d.location.state.map(u64::from)),
                json_opt(d.location.tile.map(u64::from)),
                json_opt(d.location.bin.map(|v| v as u64)),
                json_escape(&d.message)
            ));
        }
        s.push_str("]}");
        s
    }
}

impl<R: RuleCode> fmt::Display for Report<R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.diagnostics.is_empty() {
            return writeln!(f, "verified clean");
        }
        for d in &self.diagnostics {
            writeln!(f, "{d}")?;
        }
        Ok(())
    }
}

/// `null` or the number, for optional location indices.
fn json_opt(v: Option<u64>) -> String {
    match v {
        Some(v) => v.to_string(),
        None => "null".to_string(),
    }
}

/// Escapes a string for inclusion in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    enum TestRule {
        One,
        Two,
    }

    impl RuleCode for TestRule {
        fn code(&self) -> &'static str {
            match self {
                TestRule::One => "T001-one",
                TestRule::Two => "T002-two",
            }
        }
    }

    #[test]
    fn location_display_forms() {
        assert_eq!(Location::default().to_string(), "mapping");
        assert_eq!(
            Location::array(2).pattern(7).tile(3).to_string(),
            "array 2, pattern 7, tile 3"
        );
        assert_eq!(
            Location::of_pattern(1).state(9).to_string(),
            "pattern 1, state 9"
        );
        assert_eq!(Location::array(0).bin(4).to_string(), "array 0, bin 4");
    }

    #[test]
    fn report_legality_and_queries() {
        let mut r: Report<TestRule> = Report::default();
        assert!(r.is_legal() && r.is_empty());
        r.push(
            TestRule::One,
            Severity::Warning,
            Location::default(),
            "w".into(),
        );
        assert!(r.is_legal() && !r.is_empty());
        r.push(
            TestRule::Two,
            Severity::Error,
            Location::array(0),
            "e".into(),
        );
        assert!(!r.is_legal());
        assert_eq!(r.errors().count(), 1);
        assert_eq!(r.by_rule(TestRule::Two).len(), 1);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn merge_concatenates_in_order() {
        let mut a: Report<TestRule> = Report::default();
        a.push(
            TestRule::One,
            Severity::Info,
            Location::default(),
            "a".into(),
        );
        let mut b: Report<TestRule> = Report::default();
        b.push(
            TestRule::Two,
            Severity::Error,
            Location::default(),
            "b".into(),
        );
        a.merge(b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.diagnostics[1].rule, TestRule::Two);
        assert!(!a.is_legal());
    }

    #[test]
    fn json_schema_is_stable() {
        let mut r: Report<TestRule> = Report::default();
        r.push(
            TestRule::One,
            Severity::Error,
            Location::of_pattern(3).state(11),
            "bad \"state\"\n".into(),
        );
        let json = r.to_json();
        assert!(
            json.starts_with("{\"legal\": false, \"findings\": ["),
            "{json}"
        );
        assert!(json.contains("\"rule\": \"T001-one\""), "{json}");
        assert!(json.contains("\"pattern\": 3"), "{json}");
        assert!(json.contains("\"state\": 11"), "{json}");
        assert!(json.contains("\"array\": null"), "{json}");
        assert!(json.contains("bad \\\"state\\\"\\n"), "{json}");
    }

    #[test]
    fn escaping_handles_control_chars() {
        assert_eq!(
            json_escape("a\"b\\c\nd\te\u{1}"),
            "a\\\"b\\\\c\\nd\\te\\u0001"
        );
    }
}
