//! NBVA compilation (§4.1): unfolding, bounded-repetition rewriting,
//! tile-capacity splitting, and bit-vector allocation.

use crate::{CompileError, CompilerConfig};
use rap_arch::encoding::column_count;
use rap_automata::nbva::{Nbva, ReadAction, StateKind};
use rap_regex::rewrite::{split_bounded, unfold_below_threshold};
use rap_regex::{CharClass, Regex};
use serde::{Deserialize, Serialize};

/// Bit-vector storage allocated to one NBVA state (row-first mapping of
/// §3.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BvAlloc {
    /// Bit-vector width in bits (the repetition bound).
    pub width_bits: u32,
    /// CAM rows used per column — the BV depth.
    pub depth: u32,
    /// CAM columns occupied by the vector (`⌈width/depth⌉`).
    pub columns: u32,
    /// Read action exposed to successors.
    pub read: ReadAction,
}

/// A regex compiled for NBVA mode.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CompiledNbva {
    /// The automaton (bit-vector semantics included).
    pub nbva: Nbva,
    /// BV depth every vector of this regex uses.
    pub depth: u32,
    /// Per-state CAM columns: CC codes, plus for BV states one initial
    /// vector column and the BV storage columns.
    pub state_columns: Vec<u32>,
    /// Per-state bit-vector allocation (`None` for plain states).
    pub bv_allocs: Vec<Option<BvAlloc>>,
}

impl CompiledNbva {
    /// Total CAM columns of the image.
    pub fn total_columns(&self) -> u64 {
        self.state_columns.iter().map(|&c| u64::from(c)).sum()
    }

    /// Total bit-vector bits stored.
    pub fn bv_bits(&self) -> u64 {
        self.bv_allocs
            .iter()
            .flatten()
            .map(|a| u64::from(a.width_bits))
            .sum()
    }

    /// Number of bit-vector states.
    pub fn bv_states(&self) -> usize {
        self.bv_allocs.iter().flatten().count()
    }
}

/// Compiles a regex for NBVA mode at the configured depth and threshold.
pub(crate) fn compile(
    regex: &Regex,
    config: &CompilerConfig,
) -> Result<CompiledNbva, CompileError> {
    let depth = config.bv_depth;
    // Reject an invalid depth before rewriting: fit_to_tile sizes tile
    // budgets as `columns × depth`, which degenerates at depth 0.
    config.arch.try_bv_columns(0, depth)?;
    // §4.1 pipeline: unfold small/complex repetitions, split r{m,n} into
    // r{m}·r{0,n−m}, then split repetitions too wide for one tile
    // (Example 4.3's dichotomic search reduces to this closed form).
    let rewritten = split_bounded(&unfold_below_threshold(regex, config.unfold_threshold));
    let fitted = fit_to_tile(&rewritten, depth, config)?;
    let nbva = Nbva::from_regex(&fitted, config.unfold_threshold);
    if nbva.is_empty() {
        return Err(CompileError::EmptyLanguageOrEpsilon);
    }

    let mut state_columns = Vec::with_capacity(nbva.len());
    let mut bv_allocs = Vec::with_capacity(nbva.len());
    for state in nbva.states() {
        let cc_cols = column_count(&state.cc);
        match state.kind {
            StateKind::Plain => {
                state_columns.push(cc_cols);
                bv_allocs.push(None);
            }
            StateKind::Bv { width, read } => {
                let columns = config.arch.try_bv_columns(width, depth)?;
                // CC codes + one initial-vector column (set1) + BV storage.
                state_columns.push(cc_cols + 1 + columns);
                bv_allocs.push(Some(BvAlloc {
                    width_bits: width,
                    depth,
                    columns,
                    read,
                }));
            }
        }
    }
    let compiled = CompiledNbva {
        nbva,
        depth,
        state_columns,
        bv_allocs,
    };

    // Per-state fit (must hold by construction) and whole-array capacity.
    let tile_cols = u64::from(config.arch.tile_columns);
    for (i, &cols) in compiled.state_columns.iter().enumerate() {
        assert!(
            u64::from(cols) <= tile_cols,
            "state {i} needs {cols} columns after fitting (> {tile_cols})"
        );
    }
    let capacity = u64::from(config.arch.states_per_array());
    let columns = compiled.total_columns();
    if columns > capacity {
        return Err(CompileError::TooLarge {
            states: columns,
            capacity,
        });
    }
    Ok(compiled)
}

/// Splits every surviving repetition whose bit vector cannot fit a single
/// tile into a chain of smaller repetitions (Example 4.3:
/// `a{1024}` at depth 4 → `a{504}a{504}a{16}`).
///
/// The split is exact for both shapes: `σ{m} ≡ σ{k}·σ{m−k}` and
/// `σ{0,n} ≡ σ{0,k}·σ{0,n−k}`.
///
/// Returns [`CompileError::BvCapacity`] when the per-tile capacity for the
/// repetition's class is zero — no split can fit, and looping on a zero
/// step would otherwise never terminate.
fn fit_to_tile(regex: &Regex, depth: u32, config: &CompilerConfig) -> Result<Regex, CompileError> {
    Ok(match regex {
        Regex::Empty | Regex::Class(_) => regex.clone(),
        Regex::Concat(parts) => Regex::concat(
            parts
                .iter()
                .map(|p| fit_to_tile(p, depth, config))
                .collect::<Result<_, _>>()?,
        ),
        Regex::Alt(parts) => Regex::alt(
            parts
                .iter()
                .map(|p| fit_to_tile(p, depth, config))
                .collect::<Result<_, _>>()?,
        ),
        Regex::Star(inner) => Regex::star(fit_to_tile(inner, depth, config)?),
        Regex::Plus(inner) => Regex::plus(fit_to_tile(inner, depth, config)?),
        Regex::Opt(inner) => Regex::opt(fit_to_tile(inner, depth, config)?),
        Regex::Repeat { inner, min, max } => {
            let body = fit_to_tile(inner, depth, config)?;
            let (cc, n) = match (&body, max) {
                (Regex::Class(cc), Some(n)) => (*cc, *n),
                // Non-class or unbounded repetitions were already unfolded
                // by the earlier rewriting passes.
                _ => return Ok(Regex::repeat(body, *min, *max)),
            };
            let max_bits = max_bits_per_tile(&cc, depth, config);
            if n <= max_bits {
                return Ok(Regex::repeat(body, *min, *max));
            }
            if max_bits == 0 {
                return Err(CompileError::BvCapacity {
                    width: n,
                    capacity: 0,
                });
            }
            let mut parts = Vec::new();
            let mut remaining = n;
            while remaining > 0 {
                let k = remaining.min(max_bits);
                let piece_min = if *min == n { k } else { 0 };
                parts.push(Regex::repeat(Regex::Class(cc), piece_min, Some(k)));
                remaining -= k;
            }
            Regex::concat(parts)
        }
    })
}

/// Largest repetition bound of class `cc` whose image (CC codes + initial
/// vector column + BV columns) fits one tile at the given depth.
fn max_bits_per_tile(cc: &CharClass, depth: u32, config: &CompilerConfig) -> u32 {
    let cc_cols = column_count(cc).max(1);
    let available = config.arch.tile_columns.saturating_sub(cc_cols + 1);
    let cam_limit = available * depth;
    match config.bv_bits_cap {
        Some(cap) => cam_limit.min(cap),
        None => cam_limit,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rap_automata::nfa::Nfa;
    use rap_regex::parse;

    fn cfg(depth: u32) -> CompilerConfig {
        CompilerConfig {
            bv_depth: depth,
            ..CompilerConfig::default()
        }
    }

    #[test]
    fn invalid_depth_is_an_error_not_a_panic() {
        let regex = parse("x{100}y").expect("parses");
        for depth in [0, 64] {
            let err = compile(&regex, &cfg(depth)).expect_err("bad depth");
            assert!(matches!(err, CompileError::BadBvDepth(_)), "{err}");
        }
    }

    fn compile_str(pattern: &str, depth: u32) -> CompiledNbva {
        compile(&parse(pattern).expect("parses"), &cfg(depth)).expect("compiles")
    }

    #[test]
    fn zero_bv_capacity_is_a_typed_error() {
        // With a 0-bit cap no split of x{100} can ever fit a tile; this
        // used to loop forever on a zero-sized split step.
        let regex = parse("x{100}y").expect("parses");
        let config = CompilerConfig {
            bv_bits_cap: Some(0),
            ..cfg(4)
        };
        let err = compile(&regex, &config).expect_err("unencodable repetition");
        assert!(
            matches!(
                err,
                CompileError::BvCapacity {
                    width: 100,
                    capacity: 0
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn fig5_allocation() {
        // b(a{7}|c{5})b at depth 4: a{7} → 2 columns, c{5} → 2 columns.
        let c = compile_str("b(a{7}|c{5})b", 4);
        assert_eq!(c.nbva.len(), 4);
        assert_eq!(c.bv_states(), 2);
        let widths: Vec<u32> = c.bv_allocs.iter().flatten().map(|a| a.columns).collect();
        assert_eq!(widths, vec![2, 2]);
        // Each BV state: 1 CC + 1 init + 2 BV = 4 columns.
        assert_eq!(c.state_columns, vec![1, 4, 4, 1]);
    }

    #[test]
    fn example_4_2_widths() {
        // ab{10,48}cd{34}ef{128} at depth 16.
        let c = compile_str("ab{10,48}cd{34}ef{128}", 16);
        let allocs: Vec<BvAlloc> = c.bv_allocs.iter().flatten().copied().collect();
        // b{10} (r(10)), b{0,38} (rAll), d{34} (r(34)), f{128} (r(128)).
        assert_eq!(allocs.len(), 4);
        assert_eq!(allocs[0].read, ReadAction::Exact(10));
        assert_eq!(allocs[1].read, ReadAction::All);
        assert_eq!(allocs[1].width_bits, 38);
        assert_eq!(allocs[3].columns, 8); // 128/16
    }

    #[test]
    fn example_4_3_tile_splitting() {
        // a{1024} at depth 4 splits into 504 + 504 + 16.
        let c = compile_str("a{1024}bc{0,16}", 4);
        let widths: Vec<u32> = c.bv_allocs.iter().flatten().map(|a| a.width_bits).collect();
        assert_eq!(widths, vec![504, 504, 16, 16]);
        // Semantics preserved.
        let re = parse("a{1024}bc{0,16}").expect("parses");
        let mut input = vec![b'a'; 1024];
        input.push(b'b');
        input.extend_from_slice(b"cc");
        assert_eq!(
            c.nbva.match_ends(&input),
            Nfa::from_regex(&re).match_ends(&input)
        );
    }

    #[test]
    fn split_preserves_language_on_exact_boundary() {
        let c = compile_str("a{1008}", 4); // exactly two 504-bit tiles
        let widths: Vec<u32> = c.bv_allocs.iter().flatten().map(|a| a.width_bits).collect();
        assert_eq!(widths, vec![504, 504]);
        let input = vec![b'a'; 1008];
        assert_eq!(c.nbva.match_ends(&input), vec![1008]);
        assert!(c.nbva.match_ends(&input[..1007]).is_empty());
    }

    #[test]
    fn per_state_columns_respect_tile() {
        let c = compile_str("a{1024}bc{0,16}", 4);
        assert!(c.state_columns.iter().all(|&cols| cols <= 128));
        // a{504}: 1 CC + 1 init + 126 BV = 128 (Example 4.3's arithmetic).
        assert_eq!(c.state_columns[0], 128);
    }

    #[test]
    fn depth_trades_columns_for_latency() {
        let deep = compile_str("x{64}y", 32);
        let shallow = compile_str("x{64}y", 4);
        let cols = |c: &CompiledNbva| c.bv_allocs.iter().flatten().next().map(|a| a.columns);
        assert_eq!(cols(&deep), Some(2));
        assert_eq!(cols(&shallow), Some(16));
    }

    #[test]
    fn bv_bits_accounting() {
        let c = compile_str("ab{10,48}c", 8);
        assert_eq!(c.bv_bits(), 48);
        assert_eq!(c.bv_states(), 2);
    }

    #[test]
    fn small_rep_below_threshold_has_no_bvs() {
        let c = compile_str("a{3}b{200}", 4);
        // a{3} unfolds; b{200} keeps a BV.
        assert_eq!(c.bv_states(), 1);
        assert_eq!(c.nbva.len(), 4); // a a a b{200}
    }
}
