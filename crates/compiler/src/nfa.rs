//! Basic-NFA compilation (the classical Glushkov path of §4).

use crate::{CompileError, CompilerConfig};
use rap_arch::encoding::column_count;
use rap_automata::nfa::Nfa;
use rap_regex::Regex;
use serde::{Deserialize, Serialize};

/// A regex compiled for NFA mode: the Glushkov automaton (bounded
/// repetitions fully unfolded) plus per-state CAM column counts.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CompiledNfa {
    /// The automaton.
    pub nfa: Nfa,
    /// CAM columns each state occupies (one per product-term code of its
    /// character class).
    pub state_columns: Vec<u32>,
}

impl CompiledNfa {
    /// Total CAM columns of the image.
    pub fn total_columns(&self) -> u64 {
        self.state_columns.iter().map(|&c| u64::from(c)).sum()
    }
}

/// Compiles a regex for NFA mode.
pub(crate) fn compile(regex: &Regex, config: &CompilerConfig) -> Result<CompiledNfa, CompileError> {
    let nfa = Nfa::from_regex(regex);
    if nfa.is_empty() {
        return Err(CompileError::EmptyLanguageOrEpsilon);
    }
    let state_columns: Vec<u32> = nfa.states().iter().map(|s| column_count(&s.cc)).collect();
    let compiled = CompiledNfa { nfa, state_columns };
    let capacity = u64::from(config.arch.states_per_array());
    let columns = compiled.total_columns();
    if columns > capacity {
        return Err(CompileError::TooLarge {
            states: columns,
            capacity,
        });
    }
    Ok(compiled)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rap_regex::parse;

    fn cfg() -> CompilerConfig {
        CompilerConfig::default()
    }

    #[test]
    fn columns_counted_per_state() {
        let c = compile(&parse(r"a\wb*").expect("parses"), &cfg()).expect("compiles");
        // a → 1 column, \w → 2 columns (4 product terms), b → 1 column.
        assert_eq!(c.state_columns, vec![1, 2, 1]);
        assert_eq!(c.total_columns(), 4);
    }

    #[test]
    fn repetitions_unfolded() {
        let c = compile(&parse("x{6}y").expect("parses"), &cfg()).expect("compiles");
        assert_eq!(c.nfa.len(), 7);
    }

    #[test]
    fn epsilon_rejected() {
        assert_eq!(
            compile(&Regex::Empty, &cfg()).expect_err("no states"),
            CompileError::EmptyLanguageOrEpsilon
        );
    }

    #[test]
    fn oversized_pattern_rejected() {
        // 3000 unfolded states exceed the 2048-state array.
        let err = compile(&parse("z{3000}").expect("parses"), &cfg()).expect_err("too large");
        assert!(matches!(err, CompileError::TooLarge { .. }));
    }
}
