//! The regex-to-hardware compiler of §4.
//!
//! Each regex is compiled into one of RAP's three modes, chosen by the
//! decision graph of Fig. 9 ([`decide`]):
//!
//! 1. patterns whose bounded repetitions survive the unfolding threshold go
//!    to **NBVA** mode (bit vectors track the repetition counts),
//! 2. patterns rewritable into a union of character-class chains within a
//!    2× state budget go to **LNFA** mode (Shift-And execution),
//! 3. everything else goes to basic **NFA** mode.
//!
//! The compilation result carries all resource sizing (CAM columns, BV
//! widths/depths, tile spans) the mapper needs.
//!
//! # Example
//!
//! ```
//! use rap_compiler::{Compiler, CompilerConfig, Mode};
//!
//! let compiler = Compiler::new(CompilerConfig::default());
//! assert_eq!(compiler.compile_str("b(a{7}|c{5})b")?.mode(), Mode::Nbva);
//! assert_eq!(compiler.compile_str("a[bc].d")?.mode(), Mode::Lnfa);
//! assert_eq!(compiler.compile_str("a(b|b.*d)")?.mode(), Mode::Nfa);
//! # Ok::<(), rap_compiler::CompileError>(())
//! ```

mod lnfa;
mod nbva;
mod nfa;

pub use lnfa::{CompiledLnfa, LnfaUnit, MatchPath};
pub use nbva::{BvAlloc, CompiledNbva};
pub use nfa::CompiledNfa;

use rap_arch::config::ArchConfig;
use rap_regex::rewrite::unfold_below_threshold;
use rap_regex::{parse_pattern, ParseError, Pattern, Regex};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The execution mode a regex compiles to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Mode {
    /// Basic homogeneous NFA.
    Nfa,
    /// Nondeterministic bit vector automaton.
    Nbva,
    /// Linear NFA executed with Shift-And.
    Lnfa,
}

impl fmt::Display for Mode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Mode::Nfa => "NFA",
            Mode::Nbva => "NBVA",
            Mode::Lnfa => "LNFA",
        })
    }
}

/// Compiler parameters (§4 and the design-space exploration of §5.3).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CompilerConfig {
    /// Bounded repetitions with an upper bound at or below this are
    /// unfolded into plain states (Example 4.1 uses 4).
    pub unfold_threshold: u32,
    /// Rows of the CAM each bit vector uses — the BV *depth*, swept over
    /// {4, 8, 16, 32} in Fig. 10(a).
    pub bv_depth: u32,
    /// LNFA rewriting may grow the state count by at most this factor
    /// (Fig. 9 uses 2×).
    pub lnfa_expand_factor: f64,
    /// Hard cap on a single bit vector's width in bits; repetitions above
    /// it are split into a chain. `None` uses the CAM-derived tile limit
    /// (RAP); BVAP-style machines cap at their fixed BVM capacity.
    pub bv_bits_cap: Option<u32>,
    /// Target architecture geometry.
    pub arch: ArchConfig,
}

impl Default for CompilerConfig {
    fn default() -> Self {
        CompilerConfig {
            unfold_threshold: 4,
            bv_depth: 8,
            lnfa_expand_factor: 2.0,
            bv_bits_cap: None,
            arch: ArchConfig::default(),
        }
    }
}

/// Error produced by [`Compiler::compile`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CompileError {
    /// The pattern text failed to parse.
    Parse(ParseError),
    /// The automaton exceeds the capacity of one RAP array (regexes cannot
    /// span arrays, §3.3).
    TooLarge {
        /// States required.
        states: u64,
        /// States available in one array for this mode.
        capacity: u64,
    },
    /// The pattern matches only the empty string (no states to map).
    EmptyLanguageOrEpsilon,
    /// The configured BV depth is invalid for the CAM geometry.
    BadBvDepth(rap_arch::config::BvDepthError),
    /// A bounded repetition cannot be encoded at all: the per-tile
    /// bit-vector capacity for its character class is zero (a `bv_bits_cap`
    /// of 0, or tiles too narrow for CC codes + the initial-vector column),
    /// so no amount of tile splitting fits it. Surfaced as a typed error —
    /// the static analyzer reports it as an `A009-compile-error`
    /// diagnostic — instead of silently producing an empty tile set.
    BvCapacity {
        /// Repetition bound (bit-vector width) that needed encoding.
        width: u32,
        /// Per-tile bit capacity available for the repetition's class.
        capacity: u32,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Parse(e) => write!(f, "{e}"),
            CompileError::TooLarge { states, capacity } => write!(
                f,
                "pattern needs {states} states but one array holds only {capacity}"
            ),
            CompileError::EmptyLanguageOrEpsilon => {
                write!(f, "pattern has no states to map (empty language or ε)")
            }
            CompileError::BadBvDepth(e) => write!(f, "{e}"),
            CompileError::BvCapacity { width, capacity } => write!(
                f,
                "bounded repetition needs a {width}-bit vector but the \
                 per-tile BV capacity for its class is {capacity} bits"
            ),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<ParseError> for CompileError {
    fn from(e: ParseError) -> Self {
        CompileError::Parse(e)
    }
}

impl From<rap_arch::config::BvDepthError> for CompileError {
    fn from(e: rap_arch::config::BvDepthError) -> Self {
        CompileError::BadBvDepth(e)
    }
}

/// A regex compiled for one of the three modes.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum Compiled {
    /// Basic NFA image.
    Nfa(CompiledNfa),
    /// NBVA image with bit-vector allocations.
    Nbva(CompiledNbva),
    /// A set of linear chains with their matching paths.
    Lnfa(CompiledLnfa),
}

impl Compiled {
    /// The mode this image runs in.
    pub fn mode(&self) -> Mode {
        match self {
            Compiled::Nfa(_) => Mode::Nfa,
            Compiled::Nbva(_) => Mode::Nbva,
            Compiled::Lnfa(_) => Mode::Lnfa,
        }
    }

    /// Total hardware states (STEs / chain positions) of the image.
    pub fn state_count(&self) -> u64 {
        match self {
            Compiled::Nfa(c) => c.nfa.len() as u64,
            Compiled::Nbva(c) => c.nbva.len() as u64,
            Compiled::Lnfa(c) => c.units.iter().map(|u| u.lnfa.len() as u64).sum(),
        }
    }

    /// Whether the image is `$`-anchored (reports only at stream end).
    pub fn anchored_end(&self) -> bool {
        match self {
            Compiled::Nfa(c) => c.nfa.anchored_end(),
            Compiled::Nbva(c) => c.nbva.anchored_end(),
            Compiled::Lnfa(_) => false,
        }
    }

    /// Whether the image is `^`-anchored (threads start only at offset 0).
    pub fn anchored_start(&self) -> bool {
        match self {
            Compiled::Nfa(c) => c.nfa.anchored_start(),
            Compiled::Nbva(c) => c.nbva.anchored_start(),
            Compiled::Lnfa(_) => false,
        }
    }

    /// Attaches anchoring flags to the image (builder style).
    ///
    /// # Panics
    ///
    /// Panics when anchoring an LNFA image — the chain execution of §3.2
    /// has no anchored variant; the compiler routes anchored patterns to
    /// the other modes.
    #[must_use]
    pub fn with_anchors(self, start: bool, end: bool) -> Compiled {
        match self {
            Compiled::Nfa(img) => Compiled::Nfa(CompiledNfa {
                nfa: img.nfa.with_anchors(start, end),
                ..img
            }),
            Compiled::Nbva(img) => Compiled::Nbva(CompiledNbva {
                nbva: img.nbva.with_anchors(start, end),
                ..img
            }),
            Compiled::Lnfa(img) => {
                assert!(!start && !end, "LNFA images cannot be anchored");
                Compiled::Lnfa(img)
            }
        }
    }

    /// Total CAM columns the image occupies (CC codes + BV storage).
    pub fn column_count(&self) -> u64 {
        match self {
            Compiled::Nfa(c) => c.total_columns(),
            Compiled::Nbva(c) => c.total_columns(),
            Compiled::Lnfa(c) => c.total_columns(),
        }
    }
}

/// The regex-to-hardware compiler.
#[derive(Clone, Debug, Default)]
pub struct Compiler {
    config: CompilerConfig,
}

impl Compiler {
    /// Creates a compiler with the given configuration.
    pub fn new(config: CompilerConfig) -> Compiler {
        Compiler { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &CompilerConfig {
        &self.config
    }

    /// Decides the mode and produces the hardware image for a pattern.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::TooLarge`] when the automaton cannot fit one
    /// array and [`CompileError::EmptyLanguageOrEpsilon`] for stateless
    /// patterns.
    pub fn compile(&self, regex: &Regex) -> Result<Compiled, CompileError> {
        match decide(regex, &self.config) {
            Mode::Nbva => Ok(Compiled::Nbva(nbva::compile(regex, &self.config)?)),
            Mode::Lnfa => Ok(Compiled::Lnfa(lnfa::compile(regex, &self.config)?)),
            Mode::Nfa => Ok(Compiled::Nfa(nfa::compile(regex, &self.config)?)),
        }
    }

    /// Parses and compiles a pattern string. `^`/`$` anchors at the
    /// pattern edges are honoured (see [`Compiler::compile_anchored`]).
    ///
    /// # Errors
    ///
    /// As [`Compiler::compile`], plus [`CompileError::Parse`].
    pub fn compile_str(&self, pattern: &str) -> Result<Compiled, CompileError> {
        let parsed = parse_pattern(pattern)?;
        self.compile_anchored(&parsed)
    }

    /// Compiles a parsed pattern, honouring its anchors. Anchored patterns
    /// skip LNFA mode — the chain execution of §3.2 assumes the single
    /// initial state re-arms on every symbol — and carry their flags in
    /// the NFA/NBVA image (the hardware's start-of-data configuration).
    ///
    /// # Errors
    ///
    /// As [`Compiler::compile`].
    pub fn compile_anchored(&self, pattern: &Pattern) -> Result<Compiled, CompileError> {
        if !pattern.anchored_start && !pattern.anchored_end {
            return self.compile(&pattern.regex);
        }
        let mode = match decide(&pattern.regex, &self.config) {
            Mode::Nbva => Mode::Nbva,
            _ => Mode::Nfa,
        };
        Ok(self
            .compile_with_mode(&pattern.regex, mode)?
            .with_anchors(pattern.anchored_start, pattern.anchored_end))
    }

    /// Compiles for a *forced* mode, bypassing the decision graph. Used to
    /// model the baseline machines: CA and CAMA execute everything as basic
    /// NFAs, BVAP executes NBVA + NFA but has no LNFA mode.
    ///
    /// # Errors
    ///
    /// As [`Compiler::compile`]. Forcing [`Mode::Lnfa`] on a pattern the
    /// decision graph would not linearize panics.
    pub fn compile_with_mode(&self, regex: &Regex, mode: Mode) -> Result<Compiled, CompileError> {
        match mode {
            Mode::Nfa => Ok(Compiled::Nfa(nfa::compile(regex, &self.config)?)),
            Mode::Nbva => Ok(Compiled::Nbva(nbva::compile(regex, &self.config)?)),
            Mode::Lnfa => Ok(Compiled::Lnfa(lnfa::compile(regex, &self.config)?)),
        }
    }

    /// Runs only the decision graph (used by the Fig. 1 harness).
    pub fn decide(&self, regex: &Regex) -> Mode {
        decide(regex, &self.config)
    }
}

/// The decision graph of Fig. 9.
///
/// * If any bounded repetition survives the unfolding rewriting (single
///   character class, upper bound above the threshold), the regex needs bit
///   vectors → **NBVA**.
/// * Otherwise, if the LNFA rewriting succeeds within
///   `lnfa_expand_factor ×` the Glushkov size → **LNFA**.
/// * Otherwise → **NFA**.
pub fn decide(regex: &Regex, config: &CompilerConfig) -> Mode {
    let after_unfold = unfold_below_threshold(regex, config.unfold_threshold);
    if after_unfold.has_bounded_repetition() {
        return Mode::Nbva;
    }
    let budget = budget_for(regex, config);
    if rap_regex::rewrite::to_sequences(&after_unfold, budget).is_some() {
        return Mode::Lnfa;
    }
    Mode::Nfa
}

/// The LNFA state budget: `lnfa_expand_factor ×` the unfolded Glushkov
/// size (minimum 8 so trivial patterns always qualify).
pub(crate) fn budget_for(regex: &Regex, config: &CompilerConfig) -> u64 {
    let base = regex.unfolded_size().max(4);
    (base as f64 * config.lnfa_expand_factor).ceil() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compiler() -> Compiler {
        Compiler::new(CompilerConfig::default())
    }

    #[test]
    fn decision_graph_modes() {
        let c = compiler();
        // Bounded repetition above threshold → NBVA.
        assert_eq!(
            c.compile_str("ac{16}d").expect("compiles").mode(),
            Mode::Nbva
        );
        // Plain chain → LNFA.
        assert_eq!(c.compile_str("abcd").expect("compiles").mode(), Mode::Lnfa);
        // Small union distributes → LNFA.
        assert_eq!(
            c.compile_str("a(b|c)d").expect("compiles").mode(),
            Mode::Lnfa
        );
        // Kleene star cannot linearize → NFA.
        assert_eq!(c.compile_str("ab*c").expect("compiles").mode(), Mode::Nfa);
    }

    #[test]
    fn small_bounds_unfold_away_from_nbva() {
        let c = compiler();
        // Bound 3 ≤ threshold 4: unfolds, then linearizes.
        assert_eq!(
            c.compile_str("ab{3}c").expect("compiles").mode(),
            Mode::Lnfa
        );
    }

    #[test]
    fn paper_example_4_4_linearizes() {
        // a(b{1,2}|c)e: 5 Glushkov states, expands to 10 ≤ 2×5.
        let c = compiler();
        let compiled = c.compile_str("a(b{1,2}|c)e").expect("compiles");
        assert_eq!(compiled.mode(), Mode::Lnfa);
        assert_eq!(compiled.state_count(), 10); // abe + abbe + ace
    }

    #[test]
    fn expansion_budget_blocks_lnfa() {
        let c = compiler();
        // (a|b)(a|b)(a|b)(a|b)(a|b) has 10 positions; expansion needs
        // 32 × 5 = 160 > 2×10 states → NFA.
        let compiled = c
            .compile_str("(a|b)(a|b)(a|b)(a|b)(a|b)")
            .expect("compiles");
        assert_eq!(compiled.mode(), Mode::Nfa);
    }

    #[test]
    fn epsilon_rejected() {
        let c = compiler();
        assert_eq!(
            c.compile_str("").expect_err("ε has no states"),
            CompileError::EmptyLanguageOrEpsilon
        );
        // An optional pattern still compiles: the chain handles 'a' and the
        // ε-match is reported through the matches_empty flag.
        let compiled = c.compile_str("a?").expect("compiles");
        assert_eq!(compiled.mode(), Mode::Lnfa);
    }

    #[test]
    fn parse_errors_propagate() {
        let c = compiler();
        assert!(matches!(c.compile_str("(ab"), Err(CompileError::Parse(_))));
    }

    #[test]
    fn mode_display() {
        assert_eq!(Mode::Nfa.to_string(), "NFA");
        assert_eq!(Mode::Nbva.to_string(), "NBVA");
        assert_eq!(Mode::Lnfa.to_string(), "LNFA");
    }

    #[test]
    fn column_and_state_counts_exposed() {
        let c = compiler();
        let nfa = c.compile_str("ab*c").expect("compiles");
        assert_eq!(nfa.state_count(), 3);
        assert!(nfa.column_count() >= 3);
        let nbva = c.compile_str("ac{16}d").expect("compiles");
        assert_eq!(nbva.state_count(), 3);
    }
}
