//! LNFA compilation (§4.2): rewriting into chains and choosing the
//! state-matching path (CAM vs local switch).

use crate::{budget_for, CompileError, CompilerConfig};
use rap_arch::encoding::single_code;
use rap_automata::lnfa::Lnfa;
use rap_regex::rewrite::unfold_below_threshold;
use rap_regex::Regex;
use serde::{Deserialize, Serialize};

/// Where an LNFA's state matching happens (§3.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MatchPath {
    /// All classes fit a single 32-bit code: matched in the CAM, one column
    /// per state (84% of LNFAs in the paper's benchmarks).
    Cam,
    /// Fallback: 256-bit one-hot codes in the local switch, two columns per
    /// state.
    LocalSwitch,
}

/// One linear chain plus its matching path.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LnfaUnit {
    /// The chain.
    pub lnfa: Lnfa,
    /// CAM or local-switch matching.
    pub path: MatchPath,
}

impl LnfaUnit {
    /// Columns this chain occupies (1 per state in the CAM, 2 per state in
    /// the local switch).
    pub fn columns(&self) -> u64 {
        let per_state = match self.path {
            MatchPath::Cam => 1,
            MatchPath::LocalSwitch => 2,
        };
        self.lnfa.len() as u64 * per_state
    }
}

/// A regex compiled for LNFA mode: a union of chains.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CompiledLnfa {
    /// The chains; the regex matches when any chain matches.
    pub units: Vec<LnfaUnit>,
    /// Whether the original regex also matched ε.
    pub matches_empty: bool,
}

impl CompiledLnfa {
    /// Total columns across chains.
    pub fn total_columns(&self) -> u64 {
        self.units.iter().map(LnfaUnit::columns).sum()
    }

    /// Length of the longest chain.
    pub fn max_chain_len(&self) -> usize {
        self.units.iter().map(|u| u.lnfa.len()).max().unwrap_or(0)
    }
}

/// Compiles a regex for LNFA mode. The decision graph guarantees the
/// rewriting succeeds; a failure here means the caller skipped [`crate::decide`].
pub(crate) fn compile(
    regex: &Regex,
    config: &CompilerConfig,
) -> Result<CompiledLnfa, CompileError> {
    let after_unfold = unfold_below_threshold(regex, config.unfold_threshold);
    let budget = budget_for(regex, config);
    let set = Lnfa::from_regex(&after_unfold, budget).unwrap_or_else(|| {
        panic!("LNFA compilation invoked on a non-linearizable pattern {regex}")
    });
    if set.lnfas.is_empty() {
        return Err(CompileError::EmptyLanguageOrEpsilon);
    }
    let units: Vec<LnfaUnit> = set
        .lnfas
        .into_iter()
        .map(|lnfa| {
            let all_single = lnfa.classes().iter().all(|cc| single_code(cc).is_some());
            LnfaUnit {
                lnfa,
                path: if all_single {
                    MatchPath::Cam
                } else {
                    MatchPath::LocalSwitch
                },
            }
        })
        .collect();
    let compiled = CompiledLnfa {
        units,
        matches_empty: set.matches_empty,
    };

    let capacity = u64::from(config.arch.states_per_array());
    let columns = compiled.total_columns();
    if columns > capacity {
        return Err(CompileError::TooLarge {
            states: columns,
            capacity,
        });
    }
    Ok(compiled)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rap_regex::parse;

    fn compile_str(pattern: &str) -> CompiledLnfa {
        compile(&parse(pattern).expect("parses"), &CompilerConfig::default()).expect("compiles")
    }

    #[test]
    fn single_chain_cam_path() {
        let c = compile_str("abc");
        assert_eq!(c.units.len(), 1);
        assert_eq!(c.units[0].path, MatchPath::Cam);
        assert_eq!(c.total_columns(), 3);
        assert_eq!(c.max_chain_len(), 3);
    }

    #[test]
    fn multi_code_class_falls_back_to_switch() {
        // \w needs two 32-bit codes → the whole chain takes the one-hot
        // local-switch path at two columns per state.
        let c = compile_str(r"a\wc");
        assert_eq!(c.units[0].path, MatchPath::LocalSwitch);
        assert_eq!(c.total_columns(), 6);
    }

    #[test]
    fn range_class_stays_on_cam_path() {
        // [a-z] fits one two-term code (the multi-zero-prefix regime).
        let c = compile_str("a[a-z]c");
        assert_eq!(c.units[0].path, MatchPath::Cam);
        assert_eq!(c.total_columns(), 3);
    }

    #[test]
    fn union_distributes_into_units() {
        let c = compile_str("a(b|c)d");
        assert_eq!(c.units.len(), 2);
        assert!(c.units.iter().all(|u| u.path == MatchPath::Cam));
    }

    #[test]
    fn mixed_paths_chosen_per_unit() {
        let c = compile_str(r"(x|\w)y");
        assert_eq!(c.units.len(), 2);
        let paths: Vec<MatchPath> = c.units.iter().map(|u| u.path).collect();
        assert!(paths.contains(&MatchPath::Cam));
        assert!(paths.contains(&MatchPath::LocalSwitch));
    }

    #[test]
    fn small_repetitions_unfold_into_chain() {
        let c = compile_str("ab{2}c");
        assert_eq!(c.units.len(), 1);
        assert_eq!(c.units[0].lnfa.len(), 4);
    }

    #[test]
    #[should_panic(expected = "non-linearizable")]
    fn non_linearizable_panics() {
        let _ = compile_str("ab*c");
    }
}
