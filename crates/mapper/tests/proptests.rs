//! Property tests for the mapper: every placement must respect the
//! hardware constraints the paper states, for arbitrary workloads.

use proptest::prelude::*;
use rap_compiler::{Compiled, Compiler, CompilerConfig};
use rap_mapper::{map_workload, ArrayKind, MapperConfig};
use rap_regex::{CharClass, Regex};

/// Random compilable patterns spanning all three modes.
fn arb_pattern() -> impl Strategy<Value = Regex> {
    let literal = prop::collection::vec(
        prop_oneof![Just(b'a'), Just(b'b'), Just(b'c'), Just(b'd')],
        1..12,
    )
    .prop_map(|bytes| Regex::concat(bytes.into_iter().map(Regex::literal_byte).collect()));
    prop_oneof![
        // Chains (LNFA mode).
        literal.clone(),
        // Bounded repetitions (NBVA mode).
        (literal.clone(), 6u32..400, 0u32..60).prop_map(|(lit, m, extra)| {
            Regex::concat(vec![
                lit,
                Regex::repeat(Regex::literal_byte(b'x'), m, Some(m + extra)),
                Regex::literal_byte(b'y'),
            ])
        }),
        // Loops (NFA mode).
        (literal.clone(), literal).prop_map(|(a, b)| {
            Regex::concat(vec![a, Regex::star(Regex::Class(CharClass::dot())), b])
        }),
    ]
}

fn compile_all(patterns: &[Regex]) -> Vec<Compiled> {
    let compiler = Compiler::new(CompilerConfig::default());
    patterns
        .iter()
        .map(|re| compiler.compile(re).expect("generated patterns compile"))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every pattern is placed exactly once, every state has a tile, and
    /// tile indices stay inside the array.
    #[test]
    fn placement_covers_every_state(
        patterns in prop::collection::vec(arb_pattern(), 1..25),
        bin in prop_oneof![Just(1u32), Just(4u32), Just(16u32), Just(32u32)],
    ) {
        let compiled = compile_all(&patterns);
        let config = MapperConfig { bin_size: bin, ..MapperConfig::default() };
        let mapping = map_workload(&compiled, &config);
        let mut seen = vec![0u32; compiled.len()];
        for plan in &mapping.arrays {
            prop_assert!(plan.tiles_used <= config.arch.tiles_per_array);
            match &plan.kind {
                ArrayKind::Nfa { placements } | ArrayKind::Nbva { placements, .. } => {
                    for p in placements {
                        seen[p.pattern] += 1;
                        let expect_states = compiled[p.pattern].state_count() as usize;
                        prop_assert_eq!(p.state_tile.len(), expect_states);
                        for &t in &p.state_tile {
                            prop_assert!(t < plan.tiles_used);
                        }
                    }
                }
                ArrayKind::Lnfa { bins } => {
                    let mut patterns_here: Vec<usize> = Vec::new();
                    for b in bins {
                        prop_assert!(b.first_tile + b.tiles <= plan.tiles_used);
                        prop_assert!(b.members.len() as u32 <= config.arch.max_bin_size);
                        for m in &b.members {
                            patterns_here.push(m.pattern);
                        }
                    }
                    patterns_here.sort_unstable();
                    patterns_here.dedup();
                    for p in patterns_here {
                        seen[p] += 1;
                    }
                }
            }
        }
        prop_assert!(seen.iter().all(|&n| n == 1), "placements {seen:?}");
    }

    /// Per-tile column budgets hold: the states assigned to one tile never
    /// exceed its 128 columns.
    #[test]
    fn tile_column_budget_holds(
        patterns in prop::collection::vec(arb_pattern(), 1..25),
    ) {
        let compiled = compile_all(&patterns);
        let config = MapperConfig::default();
        let mapping = map_workload(&compiled, &config);
        for plan in &mapping.arrays {
            let mut tile_cols = vec![0u64; plan.tiles_used as usize];
            match &plan.kind {
                ArrayKind::Nfa { placements } => {
                    for p in placements {
                        let Compiled::Nfa(img) = &compiled[p.pattern] else {
                            panic!("NFA plan references non-NFA image")
                        };
                        for (q, &t) in p.state_tile.iter().enumerate() {
                            tile_cols[t as usize] += u64::from(img.state_columns[q]);
                        }
                    }
                }
                ArrayKind::Nbva { placements, .. } => {
                    for p in placements {
                        let Compiled::Nbva(img) = &compiled[p.pattern] else {
                            panic!("NBVA plan references non-NBVA image")
                        };
                        for (q, &t) in p.state_tile.iter().enumerate() {
                            tile_cols[t as usize] += u64::from(img.state_columns[q]);
                        }
                    }
                }
                ArrayKind::Lnfa { .. } => continue,
            }
            for (t, &cols) in tile_cols.iter().enumerate() {
                prop_assert!(
                    cols <= u64::from(config.arch.tile_columns),
                    "tile {t} holds {cols} columns"
                );
            }
        }
    }

    /// The no-`r`-with-`rAll` rule: a tile never hosts both read-action
    /// families (§4.1).
    #[test]
    fn read_actions_never_mix(
        patterns in prop::collection::vec(arb_pattern(), 1..25),
    ) {
        use rap_automata::nbva::ReadAction;
        let compiled = compile_all(&patterns);
        let mapping = map_workload(&compiled, &MapperConfig::default());
        for plan in &mapping.arrays {
            let ArrayKind::Nbva { placements, .. } = &plan.kind else { continue };
            let mut tile_kind: Vec<Option<bool>> = vec![None; plan.tiles_used as usize];
            for p in placements {
                let Compiled::Nbva(img) = &compiled[p.pattern] else {
                    panic!("NBVA plan references non-NBVA image")
                };
                for (q, alloc) in img.bv_allocs.iter().enumerate() {
                    let Some(a) = alloc else { continue };
                    let exact = matches!(a.read, ReadAction::Exact(_));
                    let t = p.state_tile[q] as usize;
                    match tile_kind[t] {
                        None => tile_kind[t] = Some(exact),
                        Some(k) => prop_assert_eq!(
                            k, exact,
                            "tile {} mixes r and rAll", t
                        ),
                    }
                }
            }
        }
    }

    /// LNFA bins: members fit their regions and regions fit the tile.
    #[test]
    fn bins_respect_regions(
        patterns in prop::collection::vec(arb_pattern(), 1..25),
        bin in prop_oneof![Just(2u32), Just(8u32), Just(32u32)],
    ) {
        let compiled = compile_all(&patterns);
        let config = MapperConfig { bin_size: bin, ..MapperConfig::default() };
        let mapping = map_workload(&compiled, &config);
        for plan in &mapping.arrays {
            let ArrayKind::Lnfa { bins } = &plan.kind else { continue };
            for b in bins {
                prop_assert!(b.size as usize >= b.members.len());
                prop_assert!(b.region_columns * b.size <= config.arch.tile_columns);
                for m in &b.members {
                    let span = m.columns().div_ceil(b.region_columns);
                    prop_assert!(span <= b.tiles, "member spans {span} > bin {}", b.tiles);
                }
            }
        }
    }
}
