//! Mapping output types: what the simulator consumes.

use crate::binning::Bin;
use rap_arch::config::ArchConfig;
use rap_compiler::Mode;
use serde::{Deserialize, Serialize};

/// Fixed bit-vector-module geometry (BVAP-style add-on, §2.2). When set,
/// bit vectors live in dedicated per-tile BVM slots instead of CAM columns:
/// a BV state consumes `⌈width / slot_bits⌉` slots and only
/// `slots_per_tile` slots exist per tile — the rigidity RAP's unified
/// storage removes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BvmConfig {
    /// Bits per BVM slot.
    pub slot_bits: u32,
    /// Slots per tile.
    pub slots_per_tile: u32,
}

impl Default for BvmConfig {
    fn default() -> Self {
        BvmConfig {
            slot_bits: 256,
            slots_per_tile: 8,
        }
    }
}

/// Mapper parameters.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct MapperConfig {
    /// Target architecture geometry.
    pub arch: ArchConfig,
    /// Maximum LNFAs per bin (the bin-size knob of Fig. 10(b); capped by
    /// `arch.max_bin_size`).
    pub bin_size: u32,
    /// `Some` models a BVAP-style machine with fixed bit-vector modules;
    /// `None` is RAP's unified CAM storage.
    pub bvm: Option<BvmConfig>,
    /// Run the mapper's structural self-check on the produced plan even in
    /// release builds (debug builds always run it). The full rule-based
    /// verifier lives in `rap-verify`; this flag only gates the mapper's
    /// own cheap invariant assertions.
    pub validate: bool,
}

impl Default for MapperConfig {
    fn default() -> Self {
        MapperConfig {
            arch: ArchConfig::default(),
            bin_size: 8,
            bvm: None,
            validate: false,
        }
    }
}

/// Placement of one NFA/NBVA image inside an array.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Placement {
    /// Index of the pattern in the workload.
    pub pattern: usize,
    /// Tile index (within the array) of every automaton state.
    pub state_tile: Vec<u32>,
    /// Number of automaton edges that cross tiles (routed through the
    /// global switch rather than a local one).
    pub cross_tile_edges: u32,
}

/// The mode-specific contents of an array.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum ArrayKind {
    /// Basic NFA tiles.
    Nfa {
        /// Placed regexes.
        placements: Vec<Placement>,
    },
    /// NBVA tiles (uniform BV depth per tile; we use one depth per array).
    Nbva {
        /// The BV depth.
        depth: u32,
        /// Placed regexes.
        placements: Vec<Placement>,
    },
    /// LNFA tiles holding bins of chains.
    Lnfa {
        /// The bins, in tile order.
        bins: Vec<Bin>,
    },
}

/// One allocated RAP array.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ArrayPlan {
    /// Mode-specific contents.
    pub kind: ArrayKind,
    /// Tiles allocated in this array (≤ `arch.tiles_per_array`).
    pub tiles_used: u32,
    /// CAM/local-switch columns occupied across those tiles.
    pub columns_used: u64,
}

impl ArrayPlan {
    /// The array's mode.
    pub fn mode(&self) -> Mode {
        match self.kind {
            ArrayKind::Nfa { .. } => Mode::Nfa,
            ArrayKind::Nbva { .. } => Mode::Nbva,
            ArrayKind::Lnfa { .. } => Mode::Lnfa,
        }
    }

    /// Indices of the patterns placed in this array.
    pub fn pattern_indices(&self) -> Vec<usize> {
        match &self.kind {
            ArrayKind::Nfa { placements } | ArrayKind::Nbva { placements, .. } => {
                placements.iter().map(|p| p.pattern).collect()
            }
            ArrayKind::Lnfa { bins } => {
                let mut out: Vec<usize> = Vec::new();
                for bin in bins {
                    for m in &bin.members {
                        if !out.contains(&m.pattern) {
                            out.push(m.pattern);
                        }
                    }
                }
                out
            }
        }
    }
}

/// A complete mapping of a workload onto arrays.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Mapping {
    /// The allocated arrays.
    pub arrays: Vec<ArrayPlan>,
    /// The configuration the mapping was produced with.
    pub config: MapperConfig,
}

impl Mapping {
    /// Total tiles allocated across arrays.
    pub fn tiles_used(&self) -> u32 {
        self.arrays.iter().map(|a| a.tiles_used).sum()
    }

    /// Column utilization: occupied columns over allocated capacity.
    pub fn utilization(&self) -> f64 {
        let used: u64 = self.arrays.iter().map(|a| a.columns_used).sum();
        let capacity: u64 = self
            .arrays
            .iter()
            .map(|a| u64::from(a.tiles_used) * u64::from(self.config.arch.tile_columns))
            .sum();
        if capacity == 0 {
            return 0.0;
        }
        used as f64 / capacity as f64
    }

    /// Number of arrays in each mode `(nfa, nbva, lnfa)`.
    pub fn arrays_by_mode(&self) -> (usize, usize, usize) {
        let mut counts = (0, 0, 0);
        for a in &self.arrays {
            match a.mode() {
                Mode::Nfa => counts.0 += 1,
                Mode::Nbva => counts.1 += 1,
                Mode::Lnfa => counts.2 += 1,
            }
        }
        counts
    }
}
