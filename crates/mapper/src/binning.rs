//! Multi-LNFA binning (§3.2, §4.3).
//!
//! A *bin* groups up to B chains; every tile hosting the bin is divided
//! into B equal column regions, and chain k occupies region k of each tile
//! it spans (the regex-sliced mapping of Fig. 7(b)). All first states land
//! in the bin's first tile, so the remaining tiles hold no initial state
//! and can be power-gated while idle.
//!
//! The grouping algorithm follows §4.3: sort chains by size, fill the bin
//! with up to B chains, and halve B whenever the next chain no longer fits
//! the per-region capacity, until B = 1.

use crate::plan::{ArrayKind, ArrayPlan, MapperConfig};
use rap_compiler::{CompiledLnfa, MatchPath};
use serde::{Deserialize, Serialize};

/// A reference to one chain of a compiled LNFA image.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChainRef {
    /// Pattern index in the workload.
    pub pattern: usize,
    /// Unit index within the pattern's [`CompiledLnfa`].
    pub unit: usize,
    /// Chain length in states.
    pub len: u32,
    /// Columns per state (1 on the CAM path, 2 on the local-switch path).
    pub cols_per_state: u32,
    /// Matching path.
    pub path: MatchPath,
}

impl ChainRef {
    /// Total columns the chain occupies.
    pub fn columns(&self) -> u32 {
        self.len * self.cols_per_state
    }
}

/// A bin of chains mapped regex-sliced over a span of tiles.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Bin {
    /// Number of regions per tile (the bin size B used for this bin; the
    /// member count may be smaller when the workload runs out of chains).
    pub size: u32,
    /// Columns per region (`tile_columns / size`).
    pub region_columns: u32,
    /// The member chains, one region each.
    pub members: Vec<ChainRef>,
    /// First tile of the span, set during array packing.
    pub first_tile: u32,
    /// Tiles spanned (`⌈max member columns / region_columns⌉`).
    pub tiles: u32,
}

impl Bin {
    /// The tile (relative to `first_tile`) holding state `s` of a member.
    pub fn tile_of_state(&self, member: &ChainRef, state: u32) -> u32 {
        (state * member.cols_per_state) / self.region_columns
    }

    /// Columns actually occupied by members (for utilization; the bin
    /// *allocates* `tiles × tile_columns`).
    pub fn columns_used(&self) -> u64 {
        self.members.iter().map(|m| u64::from(m.columns())).sum()
    }
}

/// Groups chains into bins per §4.3.
///
/// Chains are sorted by size (ascending, so small chains share the largest
/// bins); the bin size starts at `config.bin_size` and halves whenever the
/// next chain exceeds the per-bin span capacity.
pub fn bin_lnfas(chains: &[ChainRef], config: &MapperConfig) -> Vec<Bin> {
    let tile_cols = config.arch.tile_columns;
    let max_span = config.arch.tiles_per_array;
    let mut sorted: Vec<ChainRef> = chains.to_vec();
    sorted.sort_by_key(ChainRef::columns);

    let mut bin_size = config.bin_size.clamp(1, config.arch.max_bin_size);
    let mut bins: Vec<Bin> = Vec::new();
    let mut current: Vec<ChainRef> = Vec::new();

    let fits = |chain: &ChainRef, b: u32| -> bool {
        let region = tile_cols / b;
        region >= chain.cols_per_state && chain.columns().div_ceil(region) <= max_span
    };
    let close = |bins: &mut Vec<Bin>, members: &mut Vec<ChainRef>, _b: u32| {
        if members.is_empty() {
            return;
        }
        // The bin's region count is its *actual* member count (a tile is
        // "divided into multiple regions, with the number of regions
        // matching the number of LNFAs in the bin", §3.2) — an underfilled
        // bin therefore gets wider regions rather than dead ones.
        let b = members.len() as u32;
        let region = tile_cols / b;
        let tiles = members
            .iter()
            .map(|m| m.columns().div_ceil(region))
            .max()
            .expect("non-empty bin");
        bins.push(Bin {
            size: b,
            region_columns: region,
            members: std::mem::take(members),
            first_tile: 0,
            tiles,
        });
    };

    for chain in sorted {
        // Halve the bin size until the chain fits a region span.
        while !fits(&chain, bin_size) && bin_size > 1 {
            close(&mut bins, &mut current, bin_size);
            bin_size /= 2;
        }
        assert!(
            fits(&chain, bin_size),
            "chain of {} columns cannot fit one array even unbinned",
            chain.columns()
        );
        if current.len() as u32 == bin_size {
            close(&mut bins, &mut current, bin_size);
        }
        current.push(chain);
    }
    close(&mut bins, &mut current, bin_size);
    bins
}

/// Bins every chain of the LNFA images, then greedily packs bins into
/// arrays (each bin is "treated as one regex", §4.3).
///
/// LNFA mode stores character classes in *both* memories of a tile (§3.2:
/// "LNFA utilizes both CAM and local switches for storage of CCs, which
/// decreases the area by 2× in theory"): CAM-path bins occupy the CAM
/// columns and switch-path bins occupy the local-switch columns, so bins
/// of the two kinds overlay the same tiles. The packer keeps one tile
/// cursor per resource and an array ends when either resource runs out.
pub(crate) fn pack_lnfa(items: &[(usize, &CompiledLnfa)], config: &MapperConfig) -> Vec<ArrayPlan> {
    let mut cam_chains = Vec::new();
    let mut switch_chains = Vec::new();
    for (pattern, img) in items {
        for (unit_idx, unit) in img.units.iter().enumerate() {
            let chain = ChainRef {
                pattern: *pattern,
                unit: unit_idx,
                len: unit.lnfa.len() as u32,
                cols_per_state: match unit.path {
                    MatchPath::Cam => 1,
                    MatchPath::LocalSwitch => 2,
                },
                path: unit.path,
            };
            match unit.path {
                MatchPath::Cam => cam_chains.push(chain),
                MatchPath::LocalSwitch => switch_chains.push(chain),
            }
        }
    }
    if cam_chains.is_empty() && switch_chains.is_empty() {
        return Vec::new();
    }
    // Balance the two tile memories: any chain can fall back to one-hot
    // switch storage (at 2 columns per state), so when the CAM side is the
    // bottleneck, overflow the smallest CAM chains into the idle switch
    // until the column totals even out. This realizes §3.2's dual use of
    // CAM and local switches for CC storage.
    cam_chains.sort_by_key(|c: &ChainRef| std::cmp::Reverse(c.columns()));
    let mut cam_cols: i64 = cam_chains.iter().map(|c| i64::from(c.columns())).sum();
    let mut switch_cols: i64 = switch_chains.iter().map(|c| i64::from(c.columns())).sum();
    while let Some(chain) = cam_chains.last().copied() {
        // Moving a chain turns `columns()` CAM columns into `2 × len`
        // switch columns; do it only while it shrinks the binding resource
        // max(C, W), which is what determines the tile count.
        let moved_cols = i64::from(chain.len) * 2;
        let before = cam_cols.max(switch_cols);
        let after = (cam_cols - i64::from(chain.columns())).max(switch_cols + moved_cols);
        if after >= before {
            break;
        }
        cam_chains.pop();
        cam_cols -= i64::from(chain.columns());
        switch_cols += moved_cols;
        switch_chains.push(ChainRef {
            cols_per_state: 2,
            path: MatchPath::LocalSwitch,
            ..chain
        });
    }
    // Two independent bin queues, one per tile resource.
    let mut queues = [
        bin_lnfas(&cam_chains, config),
        bin_lnfas(&switch_chains, config),
    ];
    queues[0].reverse(); // pop from the back
    queues[1].reverse();

    let tiles_per_array = config.arch.tiles_per_array;
    let mut arrays: Vec<ArrayPlan> = Vec::new();
    let mut current: Vec<Bin> = Vec::new();
    let mut cursor = [0u32; 2]; // per-resource tile cursors
    let mut columns_used = 0u64;
    let mut close = |current: &mut Vec<Bin>, cursor: &mut [u32; 2], columns_used: &mut u64| {
        if !current.is_empty() {
            arrays.push(ArrayPlan {
                kind: ArrayKind::Lnfa {
                    bins: std::mem::take(current),
                },
                tiles_used: cursor[0].max(cursor[1]),
                columns_used: *columns_used,
            });
        }
        *cursor = [0, 0];
        *columns_used = 0;
    };

    while queues.iter().any(|q| !q.is_empty()) {
        // Fill the resource that is currently shorter, balancing the two
        // cursors so both memories of each tile are used.
        let order = if cursor[0] <= cursor[1] {
            [0, 1]
        } else {
            [1, 0]
        };
        let mut placed = false;
        for r in order {
            let Some(bin) = queues[r].last() else {
                continue;
            };
            if cursor[r] + bin.tiles <= tiles_per_array {
                let mut bin = queues[r].pop().expect("peeked above");
                bin.first_tile = cursor[r];
                cursor[r] += bin.tiles;
                columns_used += bin.columns_used();
                current.push(bin);
                placed = true;
                break;
            }
        }
        if !placed {
            assert!(
                !current.is_empty(),
                "an LNFA bin exceeds a whole array; the compiler capacity \
                 check should have rejected it"
            );
            close(&mut current, &mut cursor, &mut columns_used);
        }
    }
    close(&mut current, &mut cursor, &mut columns_used);
    arrays
}

#[cfg(test)]
mod tests {
    use super::*;
    use rap_compiler::{Compiled, Compiler, CompilerConfig};

    fn chain(pattern: usize, len: u32) -> ChainRef {
        ChainRef {
            pattern,
            unit: 0,
            len,
            cols_per_state: 1,
            path: MatchPath::Cam,
        }
    }

    fn cfg(bin: u32) -> MapperConfig {
        MapperConfig {
            bin_size: bin,
            ..MapperConfig::default()
        }
    }

    #[test]
    fn small_chains_fill_one_bin() {
        let chains: Vec<ChainRef> = (0..8).map(|i| chain(i, 10)).collect();
        let bins = bin_lnfas(&chains, &cfg(8));
        assert_eq!(bins.len(), 1);
        assert_eq!(bins[0].size, 8);
        assert_eq!(bins[0].region_columns, 16);
        assert_eq!(bins[0].members.len(), 8);
        assert_eq!(bins[0].tiles, 1); // 10 cols < 16-col region
    }

    #[test]
    fn bin_overflow_opens_next_bin() {
        let chains: Vec<ChainRef> = (0..10).map(|i| chain(i, 10)).collect();
        let bins = bin_lnfas(&chains, &cfg(8));
        assert_eq!(bins.len(), 2);
        assert_eq!(bins[0].members.len(), 8);
        assert_eq!(bins[1].members.len(), 2);
    }

    #[test]
    fn big_chain_halves_bin_size() {
        // Region at B=8 is 16 columns → span limit 16 tiles = 256 columns.
        // A 300-column chain needs B=4 (32-column regions).
        let mut chains: Vec<ChainRef> = (0..4).map(|i| chain(i, 10)).collect();
        chains.push(chain(99, 300));
        let bins = bin_lnfas(&chains, &cfg(8));
        // Small chains grouped first (sorted ascending), then the big one
        // alone; the closed bins size themselves to their member counts.
        assert_eq!(bins.len(), 2);
        assert_eq!(bins[0].size, 4);
        let big = &bins[1];
        assert_eq!(big.members.len(), 1);
        assert_eq!(big.size, 1);
        assert_eq!(big.region_columns, 128);
        assert_eq!(big.tiles, 300u32.div_ceil(128));
    }

    #[test]
    fn switch_path_chains_cost_two_columns() {
        let c = ChainRef {
            pattern: 0,
            unit: 0,
            len: 20,
            cols_per_state: 2,
            path: MatchPath::LocalSwitch,
        };
        let bins = bin_lnfas(&[c], &cfg(4));
        assert_eq!(bins[0].members[0].columns(), 40);
        assert_eq!(bins[0].region_columns, 128);
        assert_eq!(bins[0].tiles, 1);
    }

    #[test]
    fn tile_of_state_regions() {
        // Four equal chains → four regions of 32 columns each.
        let chains: Vec<ChainRef> = (0..4).map(|i| chain(i, 40)).collect();
        let bins = bin_lnfas(&chains, &cfg(4));
        let bin = &bins[0];
        assert_eq!(bin.size, 4);
        assert_eq!(bin.region_columns, 32);
        let member = bin.members[0];
        assert_eq!(bin.tile_of_state(&member, 0), 0);
        assert_eq!(bin.tile_of_state(&member, 31), 0);
        assert_eq!(bin.tile_of_state(&member, 32), 1);
        assert_eq!(bin.tile_of_state(&member, 39), 1);
    }

    #[test]
    fn end_to_end_lnfa_packing() {
        let compiler = Compiler::new(CompilerConfig::default());
        let imgs: Vec<CompiledLnfa> = ["abc", "defg", "h(i|j)k", "lmnopqrst"]
            .iter()
            .map(|p| match compiler.compile_str(p).expect("compiles") {
                Compiled::Lnfa(img) => img,
                other => panic!("{p} → {:?}", other.mode()),
            })
            .collect();
        let items: Vec<(usize, &CompiledLnfa)> = imgs.iter().enumerate().collect();
        let arrays = pack_lnfa(&items, &cfg(4));
        assert_eq!(arrays.len(), 1);
        match &arrays[0].kind {
            ArrayKind::Lnfa { bins } => {
                let total: usize = bins.iter().map(|b| b.members.len()).sum();
                assert_eq!(total, 5); // h(i|j)k contributes two chains
                                      // Bins laid out back to back *per memory resource* (CAM
                                      // bins and switch bins overlay the same tiles).
                let mut cursor = [0u32; 2];
                for b in bins {
                    let r = usize::from(b.members[0].path == MatchPath::LocalSwitch);
                    assert_eq!(b.first_tile, cursor[r]);
                    cursor[r] += b.tiles;
                }
                assert_eq!(arrays[0].tiles_used, cursor[0].max(cursor[1]));
                // The rebalancer pushed some chains onto the idle switch.
                assert!(cursor[1] > 0, "switch resource unused");
            }
            other => panic!("unexpected kind {other:?}"),
        }
    }

    #[test]
    fn bins_spanning_arrays_split() {
        // 20 bins of 1 tile each at B=1 → two arrays of 16 tiles max.
        let chains: Vec<ChainRef> = (0..20).map(|i| chain(i, 100)).collect();
        let bins = bin_lnfas(&chains, &cfg(1));
        assert_eq!(bins.len(), 20);
        // Pack through the public path.
        let config = cfg(1);
        let tiles_total: u32 = bins.iter().map(|b| b.tiles).sum();
        assert!(tiles_total > config.arch.tiles_per_array);
    }
}
