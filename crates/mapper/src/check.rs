//! Lightweight structural self-check on the mapper's own output.
//!
//! The full rule-based legality verifier lives in `rap-verify` (which
//! depends on this crate, so the mapper cannot call it). This module only
//! asserts the cheap structural invariants the packer is supposed to
//! guarantee by construction; it runs at the end of [`crate::map_workload`]
//! in debug builds and, when [`crate::MapperConfig::validate`] is set, in
//! release builds too.

use crate::plan::{ArrayKind, Mapping};
use rap_compiler::Compiled;

/// Panics when the produced `mapping` violates a structural invariant.
pub(crate) fn selfcheck(compiled: &[Compiled], mapping: &Mapping) {
    let arch = &mapping.config.arch;
    let mut placed = vec![0usize; compiled.len()];
    for (idx, array) in mapping.arrays.iter().enumerate() {
        assert!(
            array.tiles_used <= arch.tiles_per_array,
            "mapper self-check: array {idx} allocates {} tiles, max {}",
            array.tiles_used,
            arch.tiles_per_array,
        );
        // LNFA arrays overlay two column resources (CAM path and
        // local-switch path) on the same tiles, so their budget is doubled.
        let resources = match array.kind {
            ArrayKind::Lnfa { .. } => 2,
            _ => 1,
        };
        let capacity = resources * u64::from(array.tiles_used) * u64::from(arch.tile_columns);
        assert!(
            array.columns_used <= capacity,
            "mapper self-check: array {idx} books {} columns into {capacity}",
            array.columns_used,
        );
        match &array.kind {
            ArrayKind::Nfa { placements } | ArrayKind::Nbva { placements, .. } => {
                for p in placements {
                    assert!(
                        p.pattern < compiled.len(),
                        "mapper self-check: array {idx} places unknown pattern {}",
                        p.pattern,
                    );
                    placed[p.pattern] += 1;
                    assert_eq!(
                        p.state_tile.len() as u64,
                        compiled[p.pattern].state_count(),
                        "mapper self-check: array {idx} pattern {} state map sized wrong",
                        p.pattern,
                    );
                    for &t in &p.state_tile {
                        assert!(
                            t < array.tiles_used,
                            "mapper self-check: array {idx} pattern {} maps a state \
                             to tile {t}, only {} allocated",
                            p.pattern,
                            array.tiles_used,
                        );
                    }
                }
            }
            ArrayKind::Lnfa { bins } => {
                for (b, bin) in bins.iter().enumerate() {
                    assert!(
                        bin.size >= 1 && bin.size <= arch.max_bin_size,
                        "mapper self-check: array {idx} bin {b} size {} outside 1..={}",
                        bin.size,
                        arch.max_bin_size,
                    );
                    assert!(
                        bin.members.len() <= bin.size as usize,
                        "mapper self-check: array {idx} bin {b} holds {} chains in a \
                         size-{} bin",
                        bin.members.len(),
                        bin.size,
                    );
                    assert!(
                        bin.first_tile + bin.tiles <= array.tiles_used,
                        "mapper self-check: array {idx} bin {b} spans tiles {}..{}, \
                         only {} allocated",
                        bin.first_tile,
                        bin.first_tile + bin.tiles,
                        array.tiles_used,
                    );
                    for m in &bin.members {
                        assert!(
                            m.pattern < compiled.len(),
                            "mapper self-check: array {idx} bin {b} references unknown \
                             pattern {}",
                            m.pattern,
                        );
                    }
                }
            }
        }
    }
    for (pattern, &count) in placed.iter().enumerate() {
        if matches!(compiled[pattern], Compiled::Nfa(_) | Compiled::Nbva(_)) {
            assert_eq!(
                count, 1,
                "mapper self-check: pattern {pattern} placed {count} times",
            );
        }
    }
}
