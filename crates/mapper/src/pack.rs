//! Greedy first-fit packing of NFA and NBVA images into arrays (§4.3).

use crate::plan::{ArrayKind, ArrayPlan, MapperConfig, Placement};
use rap_automata::nbva::ReadAction;
use rap_compiler::{CompiledNbva, CompiledNfa};

/// Per-state block description fed to the packer: column footprint plus the
/// BV read action (NBVA states only), which drives the no-`r`-with-`rAll`
/// tile constraint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Block {
    columns: u32,
    action: Option<ActionClass>,
    /// BVM slots consumed (BVAP-style machines only; 0 with unified
    /// storage, where the BV columns are already in `columns`).
    bvm_slots: u32,
}

/// The two read-action families that may not share a tile (§4.1,
/// Example 4.3: "the RAP design disallows r and rAll actions in the same
/// tile").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ActionClass {
    Exact,
    All,
}

/// Running state of the array being filled: per-tile free columns, the
/// read-action family each tile is committed to, and BVM slot budgets.
#[derive(Clone, Debug)]
struct ArrayAccum {
    placements: Vec<Placement>,
    tile_free: Vec<u32>,
    tile_actions: Vec<Option<ActionClass>>,
    tile_slots_used: Vec<u32>,
    columns_used: u64,
}

impl ArrayAccum {
    fn new(tiles_per_array: u32, tile_columns: u32) -> ArrayAccum {
        ArrayAccum {
            placements: Vec::new(),
            tile_free: vec![tile_columns; tiles_per_array as usize],
            tile_actions: vec![None; tiles_per_array as usize],
            tile_slots_used: vec![0; tiles_per_array as usize],
            columns_used: 0,
        }
    }

    fn is_empty(&self) -> bool {
        self.placements.is_empty()
    }

    fn tiles_used(&self, tile_columns: u32) -> u32 {
        self.tile_free.iter().filter(|&&f| f < tile_columns).count() as u32
    }
}

/// Generic greedy packer shared by the NFA and NBVA paths.
struct Packer<'a> {
    config: &'a MapperConfig,
    finished: Vec<(Vec<Placement>, u32, u64)>,
    current: ArrayAccum,
}

impl<'a> Packer<'a> {
    fn new(config: &'a MapperConfig) -> Packer<'a> {
        Packer {
            config,
            finished: Vec::new(),
            current: ArrayAccum::new(config.arch.tiles_per_array, config.arch.tile_columns),
        }
    }

    /// Places one regex's blocks with first-fit over the array's tiles
    /// (each block goes to the lowest tile with room and a compatible
    /// read-action family); opens a fresh array when the regex does not
    /// fit the current one (regexes cannot span arrays, §3.3).
    ///
    /// # Panics
    ///
    /// Panics if the regex cannot fit even an empty array (the compiler's
    /// capacity check plus fragmentation headroom should prevent this).
    fn place(&mut self, pattern: usize, blocks: &[Block], edges: &[(u32, u32)]) {
        match Self::try_place(self.config, self.current.clone(), pattern, blocks, edges) {
            Some(next) => self.current = next,
            None => {
                self.flush();
                let fresh = ArrayAccum::new(
                    self.config.arch.tiles_per_array,
                    self.config.arch.tile_columns,
                );
                self.current = Self::try_place(self.config, fresh, pattern, blocks, edges)
                    .unwrap_or_else(|| {
                        panic!(
                            "pattern {pattern} does not fit one array even when empty \
                             ({} blocks)",
                            blocks.len()
                        )
                    });
            }
        }
    }

    /// Attempts the placement on a copy of the accumulator.
    fn try_place(
        config: &MapperConfig,
        mut acc: ArrayAccum,
        pattern: usize,
        blocks: &[Block],
        edges: &[(u32, u32)],
    ) -> Option<ArrayAccum> {
        let tile_cols = config.arch.tile_columns;
        let tiles_per_array = config.arch.tiles_per_array as usize;
        let slot_budget = config.bvm.map_or(u32::MAX, |b| b.slots_per_tile);
        let mut state_tile = Vec::with_capacity(blocks.len());
        for block in blocks {
            assert!(
                block.columns <= tile_cols,
                "state block of {} columns exceeds a tile",
                block.columns
            );
            assert!(
                block.bvm_slots <= slot_budget,
                "state needs {} BVM slots but a tile has {slot_budget}",
                block.bvm_slots
            );
            let tile = (0..tiles_per_array).find(|&t| {
                let fits_cols = acc.tile_free[t] >= block.columns;
                let fits_slots = acc.tile_slots_used[t] + block.bvm_slots <= slot_budget;
                let action_ok = match (block.action, acc.tile_actions[t]) {
                    (None, _) | (_, None) => true,
                    (Some(a), Some(b)) => a == b,
                };
                fits_cols && fits_slots && action_ok
            })?;
            if let Some(a) = block.action {
                acc.tile_actions[tile] = Some(a);
            }
            acc.tile_slots_used[tile] += block.bvm_slots;
            acc.tile_free[tile] -= block.columns;
            acc.columns_used += u64::from(block.columns);
            state_tile.push(tile as u32);
        }
        let cross_tile_edges = edges
            .iter()
            .filter(|&&(p, q)| state_tile[p as usize] != state_tile[q as usize])
            .count() as u32;
        acc.placements.push(Placement {
            pattern,
            state_tile,
            cross_tile_edges,
        });
        Some(acc)
    }

    fn flush(&mut self) {
        if !self.current.is_empty() {
            let tile_columns = self.config.arch.tile_columns;
            let acc = std::mem::replace(
                &mut self.current,
                ArrayAccum::new(self.config.arch.tiles_per_array, tile_columns),
            );
            self.finished.push((
                acc.placements.clone(),
                acc.tiles_used(tile_columns),
                acc.columns_used,
            ));
        }
    }

    fn finish(mut self) -> Vec<(Vec<Placement>, u32, u64)> {
        self.flush();
        self.finished
    }
}

fn action_class(read: ReadAction) -> ActionClass {
    match read {
        ReadAction::Exact(_) => ActionClass::Exact,
        ReadAction::All => ActionClass::All,
    }
}

fn nfa_edges(nfa: &rap_automata::nfa::Nfa) -> Vec<(u32, u32)> {
    let mut edges = Vec::new();
    for (p, s) in nfa.states().iter().enumerate() {
        for &q in &s.succ {
            edges.push((p as u32, q));
        }
    }
    edges
}

fn nbva_edges(nbva: &rap_automata::nbva::Nbva) -> Vec<(u32, u32)> {
    let mut edges = Vec::new();
    for (p, s) in nbva.states().iter().enumerate() {
        for &q in &s.succ {
            edges.push((p as u32, q));
        }
    }
    edges
}

/// Packs NFA images into arrays.
pub(crate) fn pack_nfa(items: &[(usize, &CompiledNfa)], config: &MapperConfig) -> Vec<ArrayPlan> {
    let mut packer = Packer::new(config);
    for (pattern, img) in items {
        let blocks: Vec<Block> = img
            .state_columns
            .iter()
            .map(|&c| Block {
                columns: c.max(1),
                action: None,
                bvm_slots: 0,
            })
            .collect();
        packer.place(*pattern, &blocks, &nfa_edges(&img.nfa));
    }
    packer
        .finish()
        .into_iter()
        .map(|(placements, tiles_used, columns_used)| ArrayPlan {
            kind: ArrayKind::Nfa { placements },
            tiles_used,
            columns_used,
        })
        .collect()
}

/// Packs NBVA images into arrays. All images must share the same BV depth
/// (one compiler configuration per workload).
pub(crate) fn pack_nbva(items: &[(usize, &CompiledNbva)], config: &MapperConfig) -> Vec<ArrayPlan> {
    let depth = items.first().map_or(0, |(_, img)| img.depth);
    let mut packer = Packer::new(config);
    for (pattern, img) in items {
        assert_eq!(img.depth, depth, "mixed BV depths in one mapping");
        let blocks: Vec<Block> = img
            .state_columns
            .iter()
            .zip(img.bv_allocs.iter())
            .map(|(&c, alloc)| match (alloc, config.bvm) {
                // BVAP-style: the vector lives in the tile's BVM, so the
                // CAM only holds the CC code(s) plus the initial vector.
                (Some(a), Some(bvm)) => Block {
                    columns: (c - a.columns).max(1),
                    action: Some(action_class(a.read)),
                    bvm_slots: a.width_bits.div_ceil(bvm.slot_bits),
                },
                (Some(a), None) => Block {
                    columns: c.max(1),
                    action: Some(action_class(a.read)),
                    bvm_slots: 0,
                },
                (None, _) => Block {
                    columns: c.max(1),
                    action: None,
                    bvm_slots: 0,
                },
            })
            .collect();
        packer.place(*pattern, &blocks, &nbva_edges(&img.nbva));
    }
    packer
        .finish()
        .into_iter()
        .map(|(placements, tiles_used, columns_used)| ArrayPlan {
            kind: ArrayKind::Nbva { depth, placements },
            tiles_used,
            columns_used,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rap_compiler::{Compiled, Compiler, CompilerConfig};

    fn compiler() -> Compiler {
        Compiler::new(CompilerConfig::default())
    }

    fn nfa_img(pattern: &str) -> CompiledNfa {
        match compiler().compile_str(pattern).expect("compiles") {
            Compiled::Nfa(img) => img,
            other => panic!("{pattern} compiled to {:?} mode", other.mode()),
        }
    }

    fn nbva_img(pattern: &str) -> CompiledNbva {
        match compiler().compile_str(pattern).expect("compiles") {
            Compiled::Nbva(img) => img,
            other => panic!("{pattern} compiled to {:?} mode", other.mode()),
        }
    }

    #[test]
    fn small_regexes_share_a_tile() {
        let a = nfa_img("a.*b");
        let b = nfa_img("c.*d");
        let arrays = pack_nfa(&[(0, &a), (1, &b)], &MapperConfig::default());
        assert_eq!(arrays.len(), 1);
        assert_eq!(arrays[0].tiles_used, 1);
        match &arrays[0].kind {
            ArrayKind::Nfa { placements } => {
                assert_eq!(placements.len(), 2);
                assert!(placements
                    .iter()
                    .all(|p| p.state_tile.iter().all(|&t| t == 0)));
            }
            other => panic!("unexpected kind {other:?}"),
        }
    }

    #[test]
    fn large_regex_spans_tiles_and_counts_cross_edges() {
        // 300 states of 1 column each → 3 tiles; chain edges cross twice.
        let pattern = format!("a.*{}", "b".repeat(298));
        let img = nfa_img(&pattern);
        let arrays = pack_nfa(&[(0, &img)], &MapperConfig::default());
        assert_eq!(arrays.len(), 1);
        assert_eq!(arrays[0].tiles_used, 3);
        match &arrays[0].kind {
            ArrayKind::Nfa { placements } => {
                assert_eq!(placements[0].cross_tile_edges, 2);
            }
            other => panic!("unexpected kind {other:?}"),
        }
    }

    #[test]
    fn array_boundary_respected() {
        // Each regex ~1100 columns: two of them cannot share a 2048-column
        // array (no array spanning), so the packer opens a second array.
        let p1 = format!("x.*{}", "y".repeat(1098));
        let p2 = format!("p.*{}", "q".repeat(1098));
        let a = nfa_img(&p1);
        let b = nfa_img(&p2);
        let arrays = pack_nfa(&[(0, &a), (1, &b)], &MapperConfig::default());
        assert_eq!(arrays.len(), 2);
    }

    #[test]
    fn nbva_read_actions_never_mix_in_a_tile() {
        // b{10,48} → r(10) and rAll states; they must land in distinct tiles.
        let img = nbva_img("ab{10,48}c");
        let arrays = pack_nbva(&[(0, &img)], &MapperConfig::default());
        match &arrays[0].kind {
            ArrayKind::Nbva { placements, depth } => {
                assert_eq!(*depth, 8);
                let tiles = &placements[0].state_tile;
                // States: a, b{10} (Exact), b{0,38} (All), c.
                assert_ne!(tiles[1], tiles[2], "r and rAll shared tile {tiles:?}");
            }
            other => panic!("unexpected kind {other:?}"),
        }
    }

    #[test]
    fn bv_blocks_do_not_split_across_tiles() {
        // x{500}y at depth 8: BV block of 1+1+63 = 65 columns must sit in
        // one tile even when the tile is partially full.
        let filler = nbva_img("m{80}n"); // 1 + (1+1+10) + 1 = 15 columns
        let big = nbva_img("x{500}y");
        let arrays = pack_nbva(&[(0, &filler), (1, &big)], &MapperConfig::default());
        match &arrays[0].kind {
            ArrayKind::Nbva { placements, .. } => {
                for p in placements {
                    // Every state sits in exactly one tile by construction;
                    // placement vector length matches the automaton.
                    assert!(!p.state_tile.is_empty());
                }
            }
            other => panic!("unexpected kind {other:?}"),
        }
        assert_eq!(arrays.len(), 1);
    }

    #[test]
    #[should_panic(expected = "does not fit one array")]
    fn oversized_after_fragmentation_panics() {
        // Six product terms cost 3 columns, so only 42 such states fit a
        // 128-column tile and 2045 total columns need 17 > 16 tiles even
        // though the compiler's 2048-column capacity check passed.
        let pattern = format!("a.*{}", r"[\x05\x15\x26\x37\x48\x59]".repeat(681));
        let img = nfa_img(&pattern);
        let _ = pack_nfa(&[(0, &img)], &MapperConfig::default());
    }
}
