//! The hardware mapper of §4.3: places compiled regexes onto RAP arrays.
//!
//! * NFA and NBVA images are packed tile-by-tile with a greedy first-fit
//!   ([`pack`]): states fill a tile's 128 columns in automaton order, BV
//!   blocks never span tiles, and a tile never mixes `r(m)` and `rAll`
//!   read actions.
//! * LNFA images are grouped into *bins* first ([`binning`]): all initial
//!   states of a bin land in one tile so the remaining tiles can be
//!   power-gated (§3.2, Fig. 7), then each bin is packed like one regex.
//!
//! Arrays are mode-homogeneous (the evaluation methodology of §5.5 sizes
//! NBVA arrays separately and replicates them for throughput).

pub mod binning;
mod check;
pub mod pack;
pub mod plan;

pub use binning::{bin_lnfas, Bin, ChainRef};
pub use plan::{ArrayKind, ArrayPlan, MapperConfig, Mapping, Placement};

use rap_compiler::Compiled;

/// Maps a compiled workload onto RAP arrays, one [`plan::ArrayPlan`] per
/// allocated array.
///
/// # Example
///
/// ```
/// use rap_compiler::{Compiler, CompilerConfig};
/// use rap_mapper::{map_workload, MapperConfig};
///
/// let compiler = Compiler::new(CompilerConfig::default());
/// let compiled = vec![
///     compiler.compile_str("abc")?,
///     compiler.compile_str("x{100}y")?,
///     compiler.compile_str("a.*b")?,
/// ];
/// let mapping = map_workload(&compiled, &MapperConfig::default());
/// assert_eq!(mapping.arrays.len(), 3); // one per mode here
/// assert!(mapping.utilization() > 0.0);
/// # Ok::<(), rap_compiler::CompileError>(())
/// ```
pub fn map_workload(compiled: &[Compiled], config: &MapperConfig) -> Mapping {
    let mut nfa_items = Vec::new();
    let mut nbva_items = Vec::new();
    let mut lnfa_items = Vec::new();
    for (idx, c) in compiled.iter().enumerate() {
        match c {
            Compiled::Nfa(img) => nfa_items.push((idx, img)),
            Compiled::Nbva(img) => nbva_items.push((idx, img)),
            Compiled::Lnfa(img) => lnfa_items.push((idx, img)),
        }
    }
    let mut arrays = Vec::new();
    arrays.extend(pack::pack_nfa(&nfa_items, config));
    arrays.extend(pack::pack_nbva(&nbva_items, config));
    arrays.extend(binning::pack_lnfa(&lnfa_items, config));
    let mapping = Mapping {
        arrays,
        config: *config,
    };
    if cfg!(debug_assertions) || config.validate {
        check::selfcheck(compiled, &mapping);
    }
    mapping
}

#[cfg(test)]
mod tests {
    use super::*;
    use rap_compiler::{Compiler, CompilerConfig, Mode};

    fn compile_all(patterns: &[&str]) -> Vec<Compiled> {
        let compiler = Compiler::new(CompilerConfig::default());
        patterns
            .iter()
            .map(|p| {
                compiler
                    .compile_str(p)
                    .unwrap_or_else(|e| panic!("{p}: {e}"))
            })
            .collect()
    }

    #[test]
    fn modes_map_to_separate_arrays() {
        let compiled = compile_all(&["abc", "x{100}y", "a.*b"]);
        let mapping = map_workload(&compiled, &MapperConfig::default());
        let modes: Vec<Mode> = mapping.arrays.iter().map(|a| a.mode()).collect();
        assert!(modes.contains(&Mode::Lnfa));
        assert!(modes.contains(&Mode::Nbva));
        assert!(modes.contains(&Mode::Nfa));
    }

    #[test]
    fn every_pattern_is_placed_exactly_once() {
        let patterns: Vec<String> = (0..40)
            .map(|i| match i % 4 {
                0 => format!("pat{i}fix"),
                1 => format!("a{{{}}}b", 20 + i),
                2 => format!("x(y|z)w{i}"),
                _ => "a.*zz".to_string(),
            })
            .collect();
        let refs: Vec<&str> = patterns.iter().map(String::as_str).collect();
        let compiled = compile_all(&refs);
        let mapping = map_workload(&compiled, &MapperConfig::default());
        let mut seen = vec![0u32; compiled.len()];
        for a in &mapping.arrays {
            for p in a.pattern_indices() {
                seen[p] += 1;
            }
        }
        assert!(seen.iter().all(|&n| n == 1), "placements: {seen:?}");
    }

    #[test]
    fn utilization_is_high_for_dense_workloads() {
        let patterns: Vec<String> = (0..200).map(|i| format!("w{i:03}xyz")).collect();
        let refs: Vec<&str> = patterns.iter().map(String::as_str).collect();
        let compiled = compile_all(&refs);
        let mapping = map_workload(&compiled, &MapperConfig::default());
        // 7-column chains inside 16-column regions waste just over half of
        // each region; a bin size matched to the chain length (128/7 → 16)
        // packs tighter.
        assert!(
            mapping.utilization() > 0.4,
            "utilization {}",
            mapping.utilization()
        );
        let tight = MapperConfig {
            bin_size: 16,
            ..MapperConfig::default()
        };
        let mapping = map_workload(&compiled, &tight);
        assert!(
            mapping.utilization() > 0.8,
            "utilization {}",
            mapping.utilization()
        );
    }
}
