//! The counter interval lattice.
//!
//! An NBVA bit-vector state tracks a bounded repetition as a set of
//! 1-indexed count positions (§3.1): an entering activation sets position
//! 1, and every consumed symbol shifts all positions up by one, dropping
//! whatever shifts past the allocated storage. The abstract domain here is
//! the classic interval lattice over those positions — `[lo, hi]`
//! over-approximates the set of positions that can simultaneously hold a
//! bit — with a widening operator so the fixpoint closes in a bounded
//! number of steps regardless of the vector width.

use std::fmt;

/// How many precise iterations to run before widening jumps the upper
/// bound to the capacity. Small bounded repetitions close exactly within
/// this budget; everything larger is widened (soundly) to the top.
const WIDEN_AFTER: u32 = 4;

/// An interval `[lo, hi]` of 1-indexed counter positions; empty when
/// `lo > hi` (the lattice bottom).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interval {
    /// Smallest position that can hold a bit.
    pub lo: u32,
    /// Largest position that can hold a bit.
    pub hi: u32,
}

impl Interval {
    /// The empty interval (no position can hold a bit).
    pub fn bottom() -> Interval {
        Interval { lo: 1, hi: 0 }
    }

    /// The single position `p`.
    pub fn singleton(p: u32) -> Interval {
        Interval { lo: p, hi: p }
    }

    /// Whether no position is representable.
    pub fn is_empty(self) -> bool {
        self.lo > self.hi
    }

    /// Whether position `p` lies in the interval.
    pub fn contains(self, p: u32) -> bool {
        self.lo <= p && p <= self.hi
    }

    /// Least upper bound.
    pub fn join(self, other: Interval) -> Interval {
        if self.is_empty() {
            return other;
        }
        if other.is_empty() {
            return self;
        }
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// One symbol's transfer function: every position advances by one and
    /// bits shifted past `cap` fall off the end of the allocated storage.
    pub fn shift(self, cap: u32) -> Interval {
        if self.is_empty() || self.lo + 1 > cap {
            return Interval::bottom();
        }
        Interval {
            lo: self.lo + 1,
            hi: (self.hi + 1).min(cap),
        }
    }

    /// Widening: any bound still moving after the precise iterations jumps
    /// straight to its extreme, guaranteeing termination.
    pub fn widen(self, next: Interval, cap: u32) -> Interval {
        if self.is_empty() {
            return next;
        }
        if next.is_empty() {
            return self;
        }
        Interval {
            lo: if next.lo < self.lo { 1 } else { self.lo },
            hi: if next.hi > self.hi { cap } else { self.hi },
        }
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            f.write_str("[]")
        } else {
            write!(f, "[{}, {}]", self.lo, self.hi)
        }
    }
}

/// The abstract value of a reachable `width`-bit counter stored in
/// `capacity` bits of CAM: the fixpoint of "join a fresh activation at
/// position 1 with everything already counting, shifted by one symbol",
/// widened after [`WIDEN_AFTER`] precise rounds.
///
/// The result is certified sound: every bit the hardware vector can ever
/// hold sits at a position inside the returned interval, so a read
/// `r(m)` with `m` outside it can never observe a set bit.
pub fn counter_interval(width: u32, capacity: u64) -> Interval {
    let cap = u32::try_from(capacity.min(u64::from(width))).unwrap_or(width);
    if cap == 0 {
        return Interval::bottom();
    }
    let entry = Interval::singleton(1);
    let mut value = Interval::bottom();
    let mut rounds = 0u32;
    loop {
        let next = value.shift(cap).join(entry);
        if next == value {
            return value;
        }
        value = if rounds >= WIDEN_AFTER {
            value.widen(next, cap)
        } else {
            next
        };
        rounds += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lattice_laws_hold() {
        let a = Interval { lo: 2, hi: 5 };
        let b = Interval { lo: 4, hi: 9 };
        assert_eq!(a.join(b), Interval { lo: 2, hi: 9 });
        assert_eq!(a.join(Interval::bottom()), a);
        assert_eq!(Interval::bottom().join(b), b);
        assert!(Interval::bottom().is_empty());
        assert!(!Interval::bottom().contains(1));
    }

    #[test]
    fn shift_drops_bits_past_capacity() {
        let v = Interval { lo: 3, hi: 4 };
        assert_eq!(v.shift(4), Interval::singleton(4));
        assert_eq!(v.shift(3), Interval::bottom());
    }

    #[test]
    fn full_capacity_counters_reach_top() {
        // Small widths close precisely; large widths only via widening —
        // both must land on [1, width].
        for width in [1, 2, 4, 24, 96, 1000] {
            let v = counter_interval(width, u64::from(width));
            assert_eq!(v, Interval { lo: 1, hi: width }, "width {width}");
        }
    }

    #[test]
    fn saturated_allocations_clamp_the_interval() {
        // 96-bit repetition squeezed into 64 bits of storage: positions
        // above 64 are unreachable, so r(96) is provably dead.
        let v = counter_interval(96, 64);
        assert_eq!(v, Interval { lo: 1, hi: 64 });
        assert!(!v.contains(96));
        assert_eq!(counter_interval(8, 0), Interval::bottom());
    }
}
