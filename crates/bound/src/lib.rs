//! `rap-bound` — static worst-case capacity/cost analyzer over mapped
//! plans.
//!
//! The cycle simulator reports what a plan *did* on one input; this crate
//! reports what any input could ever make it do. It abstractly interprets
//! a [`Mapping`] together with the compiled images placed in it and emits
//! certified worst-case bounds as `B001…` diagnostics through the shared
//! `rap-diag` schema:
//!
//! - **B001** per-array peak active-state bounds, from the `rap-analyze`
//!   dataflow fixpoint (a state the fixpoint proves never activatable can
//!   never be observed active by the simulator);
//! - **B002** per-array output pressure: more simultaneously reporting
//!   units than the array output FIFO holds;
//! - **B003** bank-buffer occupancy bounds against the `rap-sim::bank`
//!   FIFO capacities (input bytes, output records, lane skew);
//! - **B004/B005** counter value intervals from a widening fixpoint over
//!   the NBVA counter lattice ([`interval`]), subsuming the A006/A007
//!   overflow checks with tighter, allocation-aware ranges;
//! - **B006** switch fan-in congestion per tile against the global-port
//!   budget;
//! - **B007** replication pressure: unbounded match spans make shard
//!   replication impossible;
//! - **B008** (opt-in) rewrite verdicts from the exact product-construction
//!   equivalence check in `rap-analyze`.
//!
//! Every bound is *sound by construction* — the companion telemetry tests
//! use the simulator as an oracle and assert observed peaks never exceed
//! the static bounds on any benchmark suite.

pub mod interval;

pub use interval::{counter_interval, Interval};

use rap_analyze::{check_soundness, state_activity, SoundnessConfig, UnitActivity};
use rap_automata::nbva::{ReadAction, StateKind};
use rap_compiler::{Compiled, Mode};
use rap_diag::{Location, RuleCode, Severity};
use rap_mapper::{ArrayKind, ArrayPlan, Bin, Mapping, Placement};
use rap_regex::Pattern;
use std::collections::HashMap;

/// The bound-analysis report type.
pub type Report = rap_diag::Report<Rule>;

/// Occupied fraction of the per-tile global-port budget above which B006
/// flags a tile as congested.
const CONGESTION_NUM: u32 = 3;
const CONGESTION_DEN: u32 = 4;

/// The static bound rules (`B` series; `V` = verifier, `A` = analyzer).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Rule {
    /// B001: certified worst-case simultaneously-active states per array.
    ActiveBound,
    /// B002: an array can report more match records in one cycle than its
    /// output FIFO holds.
    OutputPressure,
    /// B003: worst-case bank-buffer occupancy (input bytes, output
    /// records, lane skew) against the configured FIFO capacities.
    BankOccupancy,
    /// B004: a counter's value interval is clamped below its width by the
    /// bit-vector allocation.
    CounterInterval,
    /// B005: a counter read lies outside the reachable value interval and
    /// can never observe a set bit.
    CounterDeadRead,
    /// B006: a tile's global-switch fan-in nears the port budget.
    FaninCongestion,
    /// B007: an unbounded match span forces whole-stream processing; the
    /// plan cannot be shard-replicated.
    ReplicationUnbounded,
    /// B008: the exact equivalence check found an input on which a
    /// compiled image diverges from its reference automaton.
    RewriteUnsound,
}

impl Rule {
    /// The stable diagnostic code.
    pub fn code(self) -> &'static str {
        match self {
            Rule::ActiveBound => "B001-active-bound",
            Rule::OutputPressure => "B002-output-pressure",
            Rule::BankOccupancy => "B003-bank-occupancy",
            Rule::CounterInterval => "B004-counter-interval",
            Rule::CounterDeadRead => "B005-counter-dead-read",
            Rule::FaninCongestion => "B006-fanin-congestion",
            Rule::ReplicationUnbounded => "B007-replication-unbounded",
            Rule::RewriteUnsound => "B008-rewrite-unsound",
        }
    }

    /// The fixed severity of this rule's findings.
    pub fn severity(self) -> Severity {
        match self {
            Rule::ActiveBound | Rule::BankOccupancy | Rule::CounterInterval => Severity::Info,
            Rule::OutputPressure | Rule::FaninCongestion | Rule::ReplicationUnbounded => {
                Severity::Warning
            }
            Rule::CounterDeadRead | Rule::RewriteUnsound => Severity::Error,
        }
    }

    /// Every rule, in code order.
    pub fn all() -> [Rule; 8] {
        [
            Rule::ActiveBound,
            Rule::OutputPressure,
            Rule::BankOccupancy,
            Rule::CounterInterval,
            Rule::CounterDeadRead,
            Rule::FaninCongestion,
            Rule::ReplicationUnbounded,
            Rule::RewriteUnsound,
        ]
    }
}

impl RuleCode for Rule {
    fn code(&self) -> &'static str {
        Rule::code(*self)
    }
}

/// What the analyzer should compute beyond the always-on bounds.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BoundOptions {
    /// Run the exact product-construction equivalence check on every image
    /// and emit B008 on divergence. `None` skips the (potentially
    /// expensive) check.
    pub equivalence: Option<SoundnessConfig>,
}

impl BoundOptions {
    /// Bounds only, no equivalence checking.
    pub fn bounds_only() -> BoundOptions {
        BoundOptions { equivalence: None }
    }

    /// Adds the exact equivalence check (builder style).
    #[must_use]
    pub fn with_equivalence(mut self, cfg: SoundnessConfig) -> BoundOptions {
        self.equivalence = Some(cfg);
        self
    }
}

/// Certified worst-case bounds for one array.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ArrayBound {
    /// Array index in `Mapping::arrays`.
    pub array: usize,
    /// The array's mode.
    pub mode: Mode,
    /// Hardware states placed in the array.
    pub placed_states: u64,
    /// Worst-case simultaneously-active states: the simulator's observed
    /// per-cycle active count can never exceed this.
    pub peak_active_states: u64,
    /// Placed units (placements / chains) able to report a match — the
    /// worst-case match records generated in one cycle.
    pub reporters: u64,
    /// Largest per-tile global-switch fan-in.
    pub peak_fanin: u32,
}

/// Worst-case bank-buffer occupancy, matching the fields the bank
/// simulator's `ProbeEvent::Bank` samples report.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BankBound {
    /// Array lanes fed by the bank.
    pub lanes: u64,
    /// Worst-case bytes resident across all array input FIFOs.
    pub input_fifo_bytes: u64,
    /// Worst-case match records resident across array output FIFOs plus
    /// the bank output FIFO.
    pub output_fifo_records: u64,
    /// Worst-case consumed-byte skew between the fastest and slowest lane
    /// (bounded by the ping-pong page window).
    pub max_skew: u64,
}

/// The abstract value of one reachable NBVA counter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CounterBound {
    /// Pattern index the counter belongs to.
    pub pattern: usize,
    /// NBVA state id of the bit-vector state.
    pub state: u32,
    /// Declared repetition width.
    pub width: u32,
    /// Interval of positions a bit can occupy.
    pub interval: Interval,
    /// Whether the state's read action can ever observe a set bit.
    pub read_feasible: bool,
}

/// Shard-replication pressure of the whole workload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReplicationBound {
    /// Longest possible match span in bytes; `None` means unbounded
    /// (whole-stream processing is forced).
    pub max_match_span: Option<usize>,
}

/// Everything the bound analyzer produces.
#[derive(Clone, Debug)]
pub struct BoundAnalysis {
    /// The B-rule findings.
    pub report: Report,
    /// Per-array bounds, index-aligned with `Mapping::arrays`.
    pub arrays: Vec<ArrayBound>,
    /// Bank-level occupancy bounds.
    pub bank: BankBound,
    /// One entry per reachable bit-vector counter.
    pub counters: Vec<CounterBound>,
    /// Workload replication pressure.
    pub replication: ReplicationBound,
}

impl BoundAnalysis {
    /// Worst-case simultaneously-active states across the whole bank.
    pub fn total_peak_active(&self) -> u64 {
        self.arrays.iter().map(|a| a.peak_active_states).sum()
    }
}

/// Per-image activity facts, computed once and shared across arrays.
struct ActivityCache<'a> {
    images: &'a [Compiled],
    cache: HashMap<usize, Vec<UnitActivity>>,
}

impl<'a> ActivityCache<'a> {
    fn new(images: &'a [Compiled]) -> ActivityCache<'a> {
        ActivityCache {
            images,
            cache: HashMap::new(),
        }
    }

    fn of(&mut self, pattern: usize) -> &[UnitActivity] {
        self.cache
            .entry(pattern)
            .or_insert_with(|| state_activity(&self.images[pattern]))
    }
}

/// Analyzes a mapped plan and returns certified worst-case bounds.
///
/// `images` and `patterns` are the compiled workload the mapping was built
/// from, index-aligned with the `pattern` fields inside the mapping.
/// `patterns` is consulted only by the opt-in B008 equivalence check and
/// may be empty when [`BoundOptions::equivalence`] is `None`.
///
/// # Panics
///
/// Panics when the mapping references a pattern index outside `images`, or
/// when an array's kind disagrees with the placed image's mode — both
/// indicate a plan that was not produced by the mapper for this workload.
pub fn analyze_bounds(
    images: &[Compiled],
    patterns: &[Pattern],
    mapping: &Mapping,
    options: &BoundOptions,
) -> BoundAnalysis {
    let mut report = Report::default();
    let mut activity = ActivityCache::new(images);
    let arch = &mapping.config.arch;

    let mut arrays = Vec::with_capacity(mapping.arrays.len());
    for (index, plan) in mapping.arrays.iter().enumerate() {
        let bound = array_bound(index, plan, &mut activity, &mut report);
        let ports = arch.global_ports_per_tile;
        if ports > 0 && bound.peak_fanin * CONGESTION_DEN >= ports * CONGESTION_NUM {
            let tile = peak_fanin_tile(plan, images);
            report.push(
                Rule::FaninCongestion,
                Rule::FaninCongestion.severity(),
                Location::array(index).tile(tile),
                format!(
                    "global-switch fan-in {} uses \u{2265}{}% of the {ports} \
                     ports per tile",
                    bound.peak_fanin,
                    100 * CONGESTION_NUM / CONGESTION_DEN
                ),
            );
        }
        if bound.reporters > u64::from(arch.array_output_entries) {
            report.push(
                Rule::OutputPressure,
                Rule::OutputPressure.severity(),
                Location::array(index),
                format!(
                    "{} units can report in one cycle but the array output \
                     FIFO holds {} records: worst-case input backpressures \
                     the lane",
                    bound.reporters, arch.array_output_entries
                ),
            );
        }
        report.push(
            Rule::ActiveBound,
            Rule::ActiveBound.severity(),
            Location::array(index),
            format!(
                "\u{2264} {} of {} placed states simultaneously active",
                bound.peak_active_states, bound.placed_states
            ),
        );
        arrays.push(bound);
    }

    let lanes = mapping.arrays.len() as u64;
    let bank = BankBound {
        lanes,
        input_fifo_bytes: lanes * u64::from(arch.array_input_entries),
        output_fifo_records: lanes * u64::from(arch.array_output_entries)
            + u64::from(arch.bank_output_entries),
        max_skew: 2 * u64::from(arch.bank_input_entries),
    };
    report.push(
        Rule::BankOccupancy,
        Rule::BankOccupancy.severity(),
        Location::default(),
        format!(
            "{} lane(s): \u{2264} {} input FIFO byte(s), \u{2264} {} output \
             record(s), \u{2264} {} byte(s) lane skew",
            bank.lanes, bank.input_fifo_bytes, bank.output_fifo_records, bank.max_skew
        ),
    );

    let counters = counter_bounds(images, &mut activity, &mut report);

    let replication = ReplicationBound {
        max_match_span: rap_sim::max_match_span(images),
    };
    if replication.max_match_span.is_none() {
        report.push(
            Rule::ReplicationUnbounded,
            Rule::ReplicationUnbounded.severity(),
            Location::default(),
            "a placed pattern has an unbounded match span: shard \
             replication is impossible and the plan is pinned to \
             whole-stream processing"
                .to_string(),
        );
    }

    if let Some(cfg) = &options.equivalence {
        for (i, (image, pattern)) in images.iter().zip(patterns).enumerate() {
            if let Some(description) = check_soundness(image, pattern, cfg) {
                report.push(
                    Rule::RewriteUnsound,
                    Rule::RewriteUnsound.severity(),
                    Location::of_pattern(i),
                    format!("image diverges from the reference automaton: {description}"),
                );
            }
        }
    }

    BoundAnalysis {
        report,
        arrays,
        bank,
        counters,
        replication,
    }
}

/// Computes one array's activity/fan-in bounds.
fn array_bound(
    index: usize,
    plan: &ArrayPlan,
    activity: &mut ActivityCache<'_>,
    _report: &mut Report,
) -> ArrayBound {
    let mut peak_active = 0u64;
    let mut placed = 0u64;
    let mut reporters = 0u64;
    match &plan.kind {
        ArrayKind::Nfa { placements } | ArrayKind::Nbva { placements, .. } => {
            for p in placements {
                let units = activity.of(p.pattern);
                let unit = &units[0];
                peak_active += unit.activatable_count();
                placed += unit.activatable.len() as u64;
                reporters += u64::from(unit.accepting_count() > 0);
            }
        }
        ArrayKind::Lnfa { bins } => {
            for bin in bins {
                for m in &bin.members {
                    let units = activity.of(m.pattern);
                    let unit = &units[m.unit];
                    peak_active += unit.activatable_count();
                    placed += unit.activatable.len() as u64;
                    reporters += u64::from(unit.accepting_count() > 0);
                }
            }
        }
    }
    ArrayBound {
        array: index,
        mode: plan.mode(),
        placed_states: placed,
        peak_active_states: peak_active,
        reporters,
        peak_fanin: fanin_per_tile(plan, activity.images)
            .into_iter()
            .max()
            .unwrap_or(0),
    }
}

/// Per-tile global-switch fan-in: cross-tile automaton edges landing on
/// each tile of the array.
fn fanin_per_tile(plan: &ArrayPlan, images: &[Compiled]) -> Vec<u32> {
    let mut fanin = vec![0u32; plan.tiles_used as usize];
    let mut bump = |tile: u32| {
        if let Some(slot) = fanin.get_mut(tile as usize) {
            *slot += 1;
        }
    };
    match &plan.kind {
        ArrayKind::Nfa { placements } => {
            for p in placements {
                let Compiled::Nfa(c) = &images[p.pattern] else {
                    panic!("NFA array places pattern {} of another mode", p.pattern);
                };
                cross_tile_edges(
                    p,
                    c.nfa.states().iter().map(|s| s.succ.as_slice()),
                    &mut bump,
                );
            }
        }
        ArrayKind::Nbva { placements, .. } => {
            for p in placements {
                let Compiled::Nbva(c) = &images[p.pattern] else {
                    panic!("NBVA array places pattern {} of another mode", p.pattern);
                };
                cross_tile_edges(
                    p,
                    c.nbva.states().iter().map(|s| s.succ.as_slice()),
                    &mut bump,
                );
            }
        }
        ArrayKind::Lnfa { bins } => {
            for bin in bins {
                lnfa_cross_tile_edges(bin, &mut bump);
            }
        }
    }
    fanin
}

/// Feeds every cross-tile edge's destination tile of one placement.
fn cross_tile_edges<'s>(
    placement: &Placement,
    succ: impl Iterator<Item = &'s [u32]>,
    bump: &mut impl FnMut(u32),
) {
    for (q, outs) in succ.enumerate() {
        for &s in outs {
            let from = placement.state_tile[q];
            let to = placement.state_tile[s as usize];
            if from != to {
                bump(to);
            }
        }
    }
}

/// Chains are linear: the only cross-tile edges are consecutive positions
/// straddling a region/tile boundary.
fn lnfa_cross_tile_edges(bin: &Bin, bump: &mut impl FnMut(u32)) {
    for m in &bin.members {
        for state in 1..m.len {
            let from = bin.tile_of_state(m, state - 1);
            let to = bin.tile_of_state(m, state);
            if from != to {
                bump(bin.first_tile + to);
            }
        }
    }
}

/// The tile with the largest fan-in (for the B006 location).
fn peak_fanin_tile(plan: &ArrayPlan, images: &[Compiled]) -> u32 {
    let fanin = fanin_per_tile(plan, images);
    fanin
        .iter()
        .enumerate()
        .max_by_key(|(_, &f)| f)
        .map_or(0, |(t, _)| t as u32)
}

/// Interval analysis over every reachable bit-vector counter.
fn counter_bounds(
    images: &[Compiled],
    activity: &mut ActivityCache<'_>,
    report: &mut Report,
) -> Vec<CounterBound> {
    let mut out = Vec::new();
    for (pattern, image) in images.iter().enumerate() {
        let Compiled::Nbva(c) = image else {
            continue;
        };
        let activatable = activity.of(pattern)[0].activatable.clone();
        for (q, (state, alloc)) in c.nbva.states().iter().zip(&c.bv_allocs).enumerate() {
            let StateKind::Bv { width, read } = state.kind else {
                continue;
            };
            // An unactivatable counter never holds a bit; A001 already
            // covers it, so the interval analysis skips it.
            if !activatable.get(q).copied().unwrap_or(false) {
                continue;
            }
            let capacity = alloc.map_or(u64::from(width), |a| {
                u64::from(a.columns) * u64::from(a.depth)
            });
            let value = counter_interval(width, capacity);
            let feasible = match read {
                ReadAction::Exact(m) => value.contains(m),
                ReadAction::All => !value.is_empty(),
            };
            let loc = Location::of_pattern(pattern).state(q as u32);
            if !feasible {
                let m = match read {
                    ReadAction::Exact(m) => m,
                    ReadAction::All => 0,
                };
                report.push(
                    Rule::CounterDeadRead,
                    Rule::CounterDeadRead.severity(),
                    loc,
                    format!(
                        "read r({m}) of a {width}-bit counter lies outside \
                         the reachable interval {value}: it can never \
                         observe a set bit"
                    ),
                );
            } else if value.hi < width {
                report.push(
                    Rule::CounterInterval,
                    Rule::CounterInterval.severity(),
                    loc,
                    format!(
                        "the {capacity}-bit allocation clamps this \
                         {width}-bit counter to {value}"
                    ),
                );
            }
            out.push(CounterBound {
                pattern,
                state: q as u32,
                width,
                interval: value,
                read_feasible: feasible,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rap_compiler::{Compiler, CompilerConfig};
    use rap_mapper::{map_workload, MapperConfig};
    use rap_regex::parse_pattern;

    fn plan(sources: &[&str]) -> (Vec<Compiled>, Vec<Pattern>, Mapping) {
        let compiler = Compiler::new(CompilerConfig::default());
        let patterns: Vec<Pattern> = sources
            .iter()
            .map(|s| parse_pattern(s).expect("parses"))
            .collect();
        let images: Vec<Compiled> = patterns
            .iter()
            .map(|p| compiler.compile_anchored(p).expect("compiles"))
            .collect();
        let mapping = map_workload(&images, &MapperConfig::default());
        (images, patterns, mapping)
    }

    #[test]
    fn rule_codes_are_stable() {
        let codes: Vec<&str> = Rule::all().iter().map(|r| r.code()).collect();
        assert_eq!(codes[0], "B001-active-bound");
        assert_eq!(codes.len(), 8);
        for w in codes.windows(2) {
            assert!(w[0] < w[1], "codes out of order: {w:?}");
        }
    }

    #[test]
    fn active_bounds_cover_every_array() {
        let (images, patterns, mapping) = plan(&["abc", "a[bc]{2,4}d", "x.{3}y", "hello|world"]);
        let b = analyze_bounds(&images, &patterns, &mapping, &BoundOptions::bounds_only());
        assert_eq!(b.arrays.len(), mapping.arrays.len());
        for a in &b.arrays {
            assert!(a.peak_active_states <= a.placed_states, "{a:?}");
            assert!(a.peak_active_states > 0, "{a:?}");
        }
        assert!(b.report.is_legal());
        assert!(!b.report.by_rule(Rule::ActiveBound).is_empty());
        assert!(!b.report.by_rule(Rule::BankOccupancy).is_empty());
    }

    #[test]
    fn bank_bounds_follow_the_arch_capacities() {
        let (images, patterns, mapping) = plan(&["abc", "def"]);
        let arch = &mapping.config.arch;
        let b = analyze_bounds(&images, &patterns, &mapping, &BoundOptions::bounds_only());
        assert_eq!(b.bank.lanes, mapping.arrays.len() as u64);
        assert_eq!(
            b.bank.input_fifo_bytes,
            b.bank.lanes * u64::from(arch.array_input_entries)
        );
        assert_eq!(b.bank.max_skew, 2 * u64::from(arch.bank_input_entries));
    }

    #[test]
    fn counters_get_intervals() {
        let (images, patterns, mapping) = plan(&["a[bc]{2,24}d"]);
        let b = analyze_bounds(&images, &patterns, &mapping, &BoundOptions::bounds_only());
        assert!(!b.counters.is_empty());
        for c in &b.counters {
            assert!(c.read_feasible, "{c:?}");
            assert_eq!(c.interval.lo, 1, "{c:?}");
            assert!(c.interval.hi <= c.width, "{c:?}");
        }
        assert!(b.report.by_rule(Rule::CounterDeadRead).is_empty());
    }

    #[test]
    fn unbounded_spans_are_flagged() {
        let (images, patterns, mapping) = plan(&["ab*c"]);
        let b = analyze_bounds(&images, &patterns, &mapping, &BoundOptions::bounds_only());
        assert_eq!(b.replication.max_match_span, None);
        assert!(!b.report.by_rule(Rule::ReplicationUnbounded).is_empty());

        let (images, patterns, mapping) = plan(&["abc"]);
        let b = analyze_bounds(&images, &patterns, &mapping, &BoundOptions::bounds_only());
        assert!(b.replication.max_match_span.is_some());
    }

    #[test]
    fn equivalence_verdicts_are_opt_in() {
        let (images, patterns, mapping) = plan(&["abc", "a[bc]{2,4}d"]);
        let options = BoundOptions::bounds_only().with_equivalence(SoundnessConfig::default());
        let b = analyze_bounds(&images, &patterns, &mapping, &options);
        assert!(b.report.by_rule(Rule::RewriteUnsound).is_empty());
        assert!(b.report.is_legal());
    }
}
