//! The `rap` binary: thin wrapper over [`rap_cli::run`].

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut stdout = std::io::stdout().lock();
    if let Err(e) = rap_cli::run(&argv, &mut stdout) {
        // A closed stdout (e.g. `rap ... | head`) is not an error.
        if e.to_string().contains("Broken pipe") {
            return;
        }
        eprintln!("{e}");
        std::process::exit(e.exit_code());
    }
}
