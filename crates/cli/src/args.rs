//! Minimal flag parsing (positional arguments plus `--flag value` pairs).

use crate::CliError;
use rap_circuit::Machine;

/// Parsed command arguments: positionals in order, flags by name.
#[derive(Clone, Debug, Default)]
pub struct Args {
    positional: Vec<String>,
    flags: Vec<(String, String)>,
    /// Bare switches (`--foo` with no value).
    switches: Vec<String>,
}

/// Flags that take no value.
const SWITCHES: &[&str] = &[
    "help",
    "h",
    "json",
    "prune",
    "soundness",
    "equivalence",
    "overlap",
];

impl Args {
    /// Parses an argv slice.
    ///
    /// # Errors
    ///
    /// Returns [`CliError::Usage`] when a value-taking flag has no value.
    pub fn parse(argv: &[String]) -> Result<Args, CliError> {
        let mut args = Args::default();
        let mut it = argv.iter();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--").or_else(|| a.strip_prefix('-')) {
                if SWITCHES.contains(&name) {
                    args.switches.push(name.to_string());
                } else {
                    let value = it
                        .next()
                        .ok_or_else(|| CliError::Usage(format!("flag --{name} needs a value")))?;
                    args.flags.push((name.to_string(), value.clone()));
                }
            } else {
                args.positional.push(a.clone());
            }
        }
        Ok(args)
    }

    /// Whether `--help`/`-h` was given.
    pub fn wants_help(&self) -> bool {
        self.switches.iter().any(|s| s == "help" || s == "h")
    }

    /// Whether a bare switch (e.g. `--json`) was given.
    pub fn switch(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }

    /// The `i`-th positional argument.
    ///
    /// # Errors
    ///
    /// Returns [`CliError::Usage`] naming the missing argument.
    pub fn positional(&self, i: usize, name: &str) -> Result<&str, CliError> {
        self.positional
            .get(i)
            .map(String::as_str)
            .ok_or_else(|| CliError::Usage(format!("missing <{name}> argument")))
    }

    /// A string flag.
    pub fn flag(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// A parsed numeric flag with a default.
    ///
    /// # Errors
    ///
    /// Returns [`CliError::Usage`] when the value does not parse.
    pub fn flag_num<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, CliError> {
        match self.flag(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError::Usage(format!("--{name} {v:?} is not a valid number"))),
        }
    }

    /// The `--machine` flag parsed into a [`Machine`] (default RAP).
    ///
    /// # Errors
    ///
    /// Returns [`CliError::Usage`] on an unknown machine name.
    pub fn machine(&self) -> Result<Machine, CliError> {
        match self.flag("machine").unwrap_or("rap") {
            "rap" | "RAP" => Ok(Machine::Rap),
            "cama" | "CAMA" => Ok(Machine::Cama),
            "bvap" | "BVAP" => Ok(Machine::Bvap),
            "ca" | "CA" => Ok(Machine::Ca),
            other => Err(CliError::Usage(format!(
                "unknown machine {other:?} (expected rap, cama, bvap, or ca)"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(argv: &[&str]) -> Args {
        let v: Vec<String> = argv.iter().map(|s| s.to_string()).collect();
        Args::parse(&v).expect("parses")
    }

    #[test]
    fn positionals_and_flags() {
        let a = parse(&["file.txt", "--depth", "16", "input.bin"]);
        assert_eq!(a.positional(0, "patterns").expect("pos 0"), "file.txt");
        assert_eq!(a.positional(1, "input").expect("pos 1"), "input.bin");
        assert_eq!(a.flag_num("depth", 4u32).expect("depth"), 16);
        assert_eq!(a.flag_num("bin", 8u32).expect("default"), 8);
    }

    #[test]
    fn missing_positional_is_usage() {
        let a = parse(&[]);
        assert!(matches!(a.positional(0, "x"), Err(CliError::Usage(_))));
    }

    #[test]
    fn machines_parse() {
        assert_eq!(
            parse(&["--machine", "cama"]).machine().expect("cama"),
            Machine::Cama
        );
        assert_eq!(parse(&[]).machine().expect("default"), Machine::Rap);
        assert!(parse(&["--machine", "gpu"]).machine().is_err());
    }

    #[test]
    fn flag_without_value_is_usage() {
        let v = vec!["--depth".to_string()];
        assert!(matches!(Args::parse(&v), Err(CliError::Usage(_))));
    }

    #[test]
    fn help_switch() {
        assert!(parse(&["--help"]).wants_help());
        assert!(parse(&["-h"]).wants_help());
        assert!(!parse(&["x"]).wants_help());
    }

    #[test]
    fn bad_number_is_usage() {
        let a = parse(&["--depth", "deep"]);
        assert!(matches!(a.flag_num("depth", 4u32), Err(CliError::Usage(_))));
    }

    #[test]
    fn last_flag_wins() {
        let a = parse(&["--depth", "4", "--depth", "32"]);
        assert_eq!(a.flag_num("depth", 0u32).expect("depth"), 32);
    }
}
