//! `rap scan` — scan an input file on a simulated machine.

use super::{attach_store, outln, parse_all};
use crate::args::Args;
use crate::{read_patterns, CliError};
use rap_pipeline::{BenchConfig, PatternSet, Pipeline};
use rap_sim::Simulator;
use std::io::Write;

const HELP: &str = "\
rap scan — scan an input file and report matches and modeled metrics

USAGE:
    rap scan <patterns.txt> <input-file> [FLAGS]

FLAGS:
    --machine M     rap | cama | bvap | ca   (default rap)
    --depth N       BV depth for NBVA mode   (default 8)
    --bin N         max LNFAs per bin        (default 8)
    --limit N       print at most N matches  (default 20)
    --store-dir D   persistent artifact store directory: recall the verified
                    plan from an earlier run instead of recompiling";

/// Runs the subcommand.
pub fn run(argv: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let args = Args::parse(argv)?;
    if args.wants_help() {
        outln!(out, "{HELP}");
        return Ok(());
    }
    let patterns = read_patterns(args.positional(0, "patterns.txt")?)?;
    let input_path = args.positional(1, "input-file")?;
    let input = std::fs::read(input_path)
        .map_err(|e| CliError::Runtime(format!("cannot read {input_path}: {e}")))?;
    let parsed = parse_all(&patterns)?;

    let sim = Simulator::new(args.machine()?)
        .with_bv_depth(args.flag_num("depth", 8)?)
        .with_bin_size(args.flag_num("bin", 8)?);
    // Typed chain: only a verified (hardware-legal) plan can be simulated.
    // Built through the pipeline's cached plan path so --store-dir can
    // recall the plan across invocations.
    let pats = PatternSet::from_parsed(patterns.clone(), parsed);
    let pipe = attach_store(
        Pipeline::new(BenchConfig {
            patterns_per_suite: pats.len(),
            input_len: input.len(),
            match_rate: 0.0,
            seed: 0,
        }),
        &args,
    )?;
    let plan = pipe
        .plan(&sim, &pats, None)
        .map_err(|e| CliError::Runtime(e.to_string()))?;
    let result = plan.simulate(&input);

    let limit: usize = args.flag_num("limit", 20)?;
    outln!(out, "machine: {}", result.machine);
    outln!(out, "matches: {}", result.matches.len());
    for m in result.matches.iter().take(limit) {
        outln!(
            out,
            "  pattern {:>4} ends at byte {:>8}  /{}/",
            m.pattern,
            m.end,
            patterns[m.pattern]
        );
    }
    if result.matches.len() > limit {
        outln!(
            out,
            "  ... and {} more (raise --limit)",
            result.matches.len() - limit
        );
    }
    let metrics = &result.metrics;
    outln!(out, "");
    outln!(
        out,
        "cycles      : {} ({} stall)",
        metrics.cycles,
        result.stall_cycles
    );
    outln!(
        out,
        "throughput  : {:.3} Gch/s @ {:.2} GHz",
        metrics.throughput_gchps(),
        metrics.clock_hz / 1e9
    );
    outln!(out, "energy      : {:.4} uJ", metrics.energy_uj);
    outln!(out, "area        : {:.4} mm2", metrics.area_mm2);
    outln!(out, "power       : {:.4} W", metrics.power_w());
    outln!(
        out,
        "efficiency  : {:.3} Gch/s/W, {:.3} Gch/s/mm2",
        metrics.energy_efficiency(),
        metrics.compute_density()
    );
    outln!(out, "");
    outln!(out, "energy breakdown:");
    for (category, pj) in result.energy.iter() {
        outln!(out, "  {:<13} {:>14.1} pJ", category.to_string(), pj);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (String, String) {
        let dir = std::env::temp_dir().join("rap-cli-scan");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let p = dir.join("p.txt");
        std::fs::write(&p, "needle\nb{6,20}c\n").expect("write");
        let i = dir.join("input.bin");
        std::fs::write(&i, b"hay needle hay bbbbbbbbc needle").expect("write");
        (
            p.to_str().expect("utf8").to_string(),
            i.to_str().expect("utf8").to_string(),
        )
    }

    fn run_ok(argv: &[&str]) -> String {
        let argv: Vec<String> = argv.iter().map(|s| s.to_string()).collect();
        let mut out = Vec::new();
        run(&argv, &mut out).expect("scan succeeds");
        String::from_utf8(out).expect("utf8")
    }

    #[test]
    fn scans_and_reports() {
        let (p, i) = setup();
        let s = run_ok(&[&p, &i]);
        assert!(s.contains("matches: 3"), "{s}");
        assert!(s.contains("machine: RAP"), "{s}");
        assert!(s.contains("energy breakdown"), "{s}");
    }

    #[test]
    fn machine_flag() {
        let (p, i) = setup();
        let s = run_ok(&[&p, &i, "--machine", "ca"]);
        assert!(s.contains("machine: CA"), "{s}");
        // Same match set regardless of machine.
        assert!(s.contains("matches: 3"), "{s}");
    }

    #[test]
    fn limit_truncates() {
        let (p, i) = setup();
        let s = run_ok(&[&p, &i, "--limit", "1"]);
        assert!(s.contains("and 2 more"), "{s}");
    }

    #[test]
    fn store_dir_recalls_the_plan_with_identical_matches() {
        let dir = std::env::temp_dir().join(format!(
            "rap-cli-scan-store-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let d = dir.to_str().expect("utf8");
        let (p, i) = setup();
        let first = run_ok(&[&p, &i, "--store-dir", d]);
        let store = rap_pipeline::DiskStore::open(rap_pipeline::StoreConfig::at(&dir))
            .expect("store opens");
        assert_eq!(store.len(), 1, "first run wrote the plan");
        drop(store);
        let second = run_ok(&[&p, &i, "--store-dir", d]);
        assert_eq!(first, second);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_input_is_runtime_error() {
        let (p, _) = setup();
        let argv = vec![p, "/nonexistent/input".to_string()];
        let mut out = Vec::new();
        assert!(matches!(run(&argv, &mut out), Err(CliError::Runtime(_))));
    }
}
