//! `rap swap` — certified live partial reconfiguration planning over an
//! admitted multi-tenant composition, through the pipeline's Swap stage.

use super::{attach_store, outln, parse_suite};
use crate::args::Args;
use crate::CliError;
use rap_admit::AdmitOptions;
use rap_pipeline::{BenchConfig, Pipeline, SwapOptions, SwapOutcome};
use rap_sim::Simulator;
use std::io::Write;

const HELP: &str = "\
rap swap — certify a live tenant hot-swap on an admitted composition

Admits the named resident suites onto one shared fabric, then runs the
rap-swap static hot-swap analyzer for replacing the --out tenant with the
--in suite while the others keep streaming: footprint disjointness (Q001),
bank/port interference deltas (Q002/Q003), counter-column budget (Q004),
drain-bound certification (Q005), match-ID demux continuity (Q006),
post-swap re-verification (Q007), and reconfiguration-cost overrun
against the drain window (Q008). A certified swap prints the ReconfigPlan
(drain bound, reconfiguration cost, slot assignment); a rejection lists
the violated rules and exits non-zero.

USAGE:
    rap swap <suite> [<suite>...] --out <suite> --in <suite> [FLAGS]

SUITES:
    regexlib spamassassin snort suricata prosite yara clamav

FLAGS:
    --out S         resident suite that leaves the fabric   (required)
    --in S          replacement suite swapped into its slots (required)
    --machine M     rap | cama | bvap | ca       (default rap)
    --patterns N    patterns per tenant suite    (default 24)
    --seed S        RNG seed                     (default 42)
    --banks N       fix the shared fabric at N banks (default: auto-size
                    the smallest fabric that fits every resident)
    --bv-budget N   cap fabric-wide counter/BV columns at N
    --store-dir D   persistent artifact store directory: solo and composed
                    plans are recalled from earlier runs
    --json          emit the swap analysis as JSON on stdout";

/// Runs the subcommand.
pub fn run(argv: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let args = Args::parse(argv)?;
    if args.wants_help() {
        outln!(out, "{HELP}");
        return Ok(());
    }
    args.positional(0, "suite")?;
    let mut suites = Vec::new();
    let mut i = 0;
    while let Ok(name) = args.positional(i, "suite") {
        suites.push(parse_suite(name)?);
        i += 1;
    }
    let outgoing = parse_suite(
        args.flag("out")
            .ok_or_else(|| CliError::Usage("--out <suite> is required".to_string()))?,
    )?;
    let incoming = parse_suite(
        args.flag("in")
            .ok_or_else(|| CliError::Usage("--in <suite> is required".to_string()))?,
    )?;
    if !suites.contains(&outgoing) {
        return Err(CliError::Usage(format!(
            "--out {} is not one of the resident suites",
            outgoing.name().to_lowercase()
        )));
    }
    if suites.contains(&incoming) {
        return Err(CliError::Usage(format!(
            "--in {} is already resident; pick a suite outside the composition",
            incoming.name().to_lowercase()
        )));
    }
    let machine = args.machine()?;
    let spec = BenchConfig {
        patterns_per_suite: args.flag_num("patterns", 24)?,
        input_len: 256, // swap planning is input-independent; keep the corpus tiny
        match_rate: 0.02,
        seed: args.flag_num("seed", 42)?,
    };
    let admit_options = AdmitOptions {
        banks: match args.flag("banks") {
            None => None,
            Some(_) => Some(args.flag_num("banks", 0)?),
        },
        bv_column_budget: match args.flag("bv-budget") {
            None => None,
            Some(_) => Some(args.flag_num("bv-budget", 0)?),
        },
        ..AdmitOptions::default()
    };

    let pipe = attach_store(Pipeline::new(spec), &args)?;
    let corpora: Vec<_> = suites.iter().map(|&s| pipe.corpus(s)).collect();
    let sims: Vec<Simulator> = suites
        .iter()
        .map(|&s| pipe.simulator_for(machine, s))
        .collect();
    let tenants: Vec<_> = suites
        .iter()
        .zip(&sims)
        .zip(&corpora)
        .map(|((s, sim), corpus)| (s.name(), sim, corpus.patterns()))
        .collect();
    let admission = pipe
        .admit(&tenants, &admit_options)
        .map_err(|e| CliError::Runtime(e.to_string()))?;
    if !admission.admitted() {
        return Err(CliError::Runtime(format!(
            "resident composition rejected before the swap: {} error(s)",
            admission.analysis.report.errors().count()
        )));
    }

    let in_corpus = pipe.corpus(incoming);
    let in_sim = pipe.simulator_for(machine, incoming);
    let swap_options = SwapOptions {
        banks: Some(admission.analysis.banks),
        bv_column_budget: admit_options.bv_column_budget,
    };
    let outcome = pipe
        .swap(
            &admission,
            outgoing.name(),
            (incoming.name(), &in_sim, in_corpus.patterns()),
            &swap_options,
        )
        .map_err(|e| CliError::Runtime(e.to_string()))?;
    let analysis = &outcome.analysis;

    if args.switch("json") {
        outln!(out, "{}", to_json(&outcome, machine));
    } else {
        outln!(
            out,
            "swap: {} -> {} on {machine} ({} resident tenant(s), {} patterns each, seed {})",
            outgoing.name(),
            incoming.name(),
            suites.len(),
            spec.patterns_per_suite,
            spec.seed
        );
        outln!(out, "staying : {}", analysis.staying.join(" "));
        if let Some(plan) = &analysis.plan {
            outln!(
                out,
                "fabric  : {} bank(s), {} slot(s) freed at [{}]",
                plan.banks,
                plan.freed_slots.len(),
                join_u32(&plan.freed_slots)
            );
            outln!(
                out,
                "incoming: {} array(s) at slot(s) [{}]",
                plan.slots.len(),
                join_u32(&plan.slots)
            );
            outln!(
                out,
                "drain   : {} cycle(s) certified ({} window byte(s), span {}, stall x{}, {} output record(s))",
                plan.drain.cycles,
                plan.drain.window_bytes,
                plan.drain.span_bytes,
                plan.drain.stall_allowance,
                plan.drain.output_records
            );
            outln!(
                out,
                "reconfig: {} tile(s) rewritten in {} cycle(s), {:.1} pJ ({} CAM + {} switch write(s))",
                plan.cost.tiles,
                plan.cost.cycles,
                plan.cost.energy_pj,
                plan.cost.cam_writes,
                plan.cost.switch_writes
            );
        }
        if analysis.report.is_empty() {
            outln!(out, "no findings");
        } else {
            out.write_all(analysis.report.to_string().as_bytes())
                .map_err(|e| CliError::Runtime(e.to_string()))?;
        }
        outln!(
            out,
            "verdict : {}",
            if outcome.certified() {
                "certified"
            } else {
                "rejected"
            }
        );
    }
    if !outcome.certified() {
        return Err(CliError::Runtime(format!(
            "hot swap rejected: {} error(s)",
            analysis.report.errors().count()
        )));
    }
    Ok(())
}

/// Joins slot ids for display.
fn join_u32(v: &[u32]) -> String {
    v.iter()
        .map(|s| s.to_string())
        .collect::<Vec<_>>()
        .join(", ")
}

/// Renders the swap outcome as one JSON object: verdict, the certified
/// ReconfigPlan (or null), and the Q findings in the shared rap-diag
/// schema.
fn to_json(outcome: &SwapOutcome, machine: rap_circuit::Machine) -> String {
    let analysis = &outcome.analysis;
    let mut s = format!(
        "{{\"machine\": \"{machine}\", \"certified\": {}, \"staying\": [{}]",
        outcome.certified(),
        analysis
            .staying
            .iter()
            .map(|t| format!("\"{t}\""))
            .collect::<Vec<_>>()
            .join(", ")
    );
    match &analysis.plan {
        None => s.push_str(", \"plan\": null"),
        Some(plan) => {
            s.push_str(&format!(
                ", \"plan\": {{\"outgoing\": \"{}\", \"incoming\": \"{}\", \"banks\": {}, \
                 \"slots\": [{}], \"freed_slots\": [{}], \
                 \"drain\": {{\"cycles\": {}, \"window_bytes\": {}, \"span_bytes\": {}, \
                 \"stall_allowance\": {}, \"output_records\": {}}}, \
                 \"cost\": {{\"tiles\": {}, \"cycles\": {}, \"energy_pj\": {:.3}, \
                 \"cam_writes\": {}, \"switch_writes\": {}}}}}",
                plan.outgoing,
                plan.incoming,
                plan.banks,
                join_u32(&plan.slots),
                join_u32(&plan.freed_slots),
                plan.drain.cycles,
                plan.drain.window_bytes,
                plan.drain.span_bytes,
                plan.drain.stall_allowance,
                plan.drain.output_records,
                plan.cost.tiles,
                plan.cost.cycles,
                plan.cost.energy_pj,
                plan.cost.cam_writes,
                plan.cost.switch_writes
            ));
        }
    }
    s.push_str(&format!(", \"report\": {}}}", analysis.report.to_json()));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_ok(argv: &[&str]) -> String {
        let argv: Vec<String> = argv.iter().map(|s| s.to_string()).collect();
        let mut out = Vec::new();
        run(&argv, &mut out).expect("swap succeeds");
        String::from_utf8(out).expect("utf8")
    }

    fn run_err(argv: &[&str]) -> (String, CliError) {
        let argv: Vec<String> = argv.iter().map(|s| s.to_string()).collect();
        let mut out = Vec::new();
        let err = run(&argv, &mut out).expect_err("swap fails");
        (String::from_utf8(out).expect("utf8"), err)
    }

    // The generated suites mix in unbounded constructs (`.*`, `c+`) at
    // suite-specific rates; this (suites, seed) combination keeps the
    // outgoing tenant's patterns span-bounded so the drain certifies.
    // See `certifying_combo_stays_bounded` which pins that property.
    // `--banks 2` leaves free slots beyond the freed footprint so the
    // two-array replacement fits next to the staying tenant.
    const CERTIFYING: &[&str] = &[
        "clamav",
        "yara",
        "--out",
        "clamav",
        "--in",
        "spamassassin",
        "--patterns",
        "4",
        "--seed",
        "7",
        "--banks",
        "2",
    ];

    #[test]
    fn certifying_combo_stays_bounded() {
        use rap_compiler::{Compiler, CompilerConfig};
        let patterns = rap_workloads::generate_patterns(rap_workloads::Suite::ClamAv, 4, 7);
        let compiler = Compiler::new(CompilerConfig::default());
        let images: Vec<_> = patterns
            .iter()
            .map(|p| {
                let parsed = rap_regex::parse_pattern(p).expect("parses");
                compiler.compile_anchored(&parsed).expect("compiles")
            })
            .collect();
        assert!(
            rap_sim::max_match_span(&images).is_some(),
            "outgoing ClamAV patterns at seed 7 must stay span-bounded: {patterns:?}"
        );
    }

    #[test]
    fn certified_swap_prints_the_reconfig_plan() {
        let s = run_ok(CERTIFYING);
        assert!(s.contains("swap: ClamAV -> SpamAssassin"), "{s}");
        assert!(s.contains("staying : Yara"), "{s}");
        assert!(s.contains("drain   :"), "{s}");
        assert!(s.contains("reconfig:"), "{s}");
        assert!(s.contains("verdict : certified"), "{s}");
    }

    #[test]
    fn json_carries_plan_and_report() {
        let mut argv = CERTIFYING.to_vec();
        argv.push("--json");
        let s = run_ok(&argv);
        assert!(s.contains("\"certified\": true"), "{s}");
        assert!(s.contains("\"plan\": {"), "{s}");
        assert!(s.contains("\"drain\": {"), "{s}");
        assert!(s.contains("\"legal\": true"), "{s}");
    }

    #[test]
    fn unbounded_outgoing_rejects_with_q005_and_exit_2() {
        // RegexLib is NFA-majority: at 24 patterns it always carries an
        // unbounded construct, so draining it can never be certified.
        let (s, err) = run_err(&[
            "regexlib",
            "yara",
            "--out",
            "regexlib",
            "--in",
            "prosite",
            "--patterns",
            "24",
        ]);
        assert!(matches!(err, CliError::Runtime(_)));
        assert_eq!(err.exit_code(), 2);
        assert!(s.contains("Q005"), "{s}");
        assert!(s.contains("verdict : rejected"), "{s}");
    }

    #[test]
    fn rejected_resident_composition_never_reaches_the_swap() {
        let (_, err) = run_err(&[
            "snort",
            "yara",
            "clamav",
            "suricata",
            "--out",
            "snort",
            "--in",
            "prosite",
            "--patterns",
            "8",
            "--banks",
            "1",
        ]);
        assert!(matches!(err, CliError::Runtime(_)));
        assert!(err.to_string().contains("resident composition rejected"));
    }

    #[test]
    fn out_must_be_resident() {
        let (_, err) = run_err(&["clamav", "--out", "yara", "--in", "snort"]);
        assert!(matches!(err, CliError::Usage(_)));
    }

    #[test]
    fn in_must_not_be_resident() {
        let (_, err) = run_err(&["clamav", "yara", "--out", "clamav", "--in", "yara"]);
        assert!(matches!(err, CliError::Usage(_)));
    }

    #[test]
    fn missing_out_flag_is_usage_error() {
        let (_, err) = run_err(&["clamav", "yara", "--in", "snort"]);
        assert!(matches!(err, CliError::Usage(_)));
    }

    #[test]
    fn help_prints_flags() {
        let s = run_ok(&["--help"]);
        assert!(s.contains("--out"), "{s}");
        assert!(s.contains("--in"), "{s}");
        assert!(s.contains("Q005"), "{s}");
    }
}
