//! `rap serve` — run the multi-tenant streaming scan service.

use super::{attach_store, outln, parse_suite};
use crate::args::Args;
use crate::CliError;
use rap_pipeline::{BenchConfig, Pipeline};
use rap_serve::{SendOutcome, ServeConfig, Server, SessionStats};
use std::io::Write;

const HELP: &str = "\
rap serve — multi-tenant streaming scan service on the admitted fabric

Registers each named suite as an independent tenant on a sharded
streaming scan service: registration runs the full pipeline (compile →
analyze → map → verify → bound → admit) and lands the tenant on the
least-loaded shard, where residents share one certified co-resident
plan. Each tenant's corpus input is then streamed through the §3.3
bank buffer hierarchy in interleaved chunks, with per-tenant match
delivery and certified backpressure budgets. Per-tenant results must
be bit-identical to a solo streaming run — the service exits non-zero
if any tenant diverges.

With --listen the service instead binds a TCP address and serves the
framed wire protocol (REGISTER/CHUNK/FINISH) to remote clients.

USAGE:
    rap serve <suite> [<suite>...] [FLAGS]
    rap serve --listen ADDR [--for-secs N] [FLAGS]

SUITES:
    regexlib spamassassin snort suricata prosite yara clamav

FLAGS:
    --machine M       rap | cama | bvap | ca       (default rap)
    --patterns N      patterns per tenant suite    (default 8)
    --input N         corpus input bytes per tenant (default 2048)
    --seed S          RNG seed                     (default 42)
    --shards N        scan-plane shards            (default 2)
    --queue-pages N   per-session queue budget, in ping-pong pages
                      (default 8)
    --chunk N         stream chunk size in bytes   (default 256)
    --listen ADDR     serve the framed TCP protocol on ADDR instead of
                      running suite tenants in-process
    --for-secs N      with --listen: serve for N seconds, then drain
                      (default 0 = until killed)
    --store-dir D     persistent artifact store: known pattern sets
                      register with zero compile-stage work
    --json            emit per-tenant results as JSON on stdout";

/// Runs the subcommand.
pub fn run(argv: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let args = Args::parse(argv)?;
    if args.wants_help() {
        outln!(out, "{HELP}");
        return Ok(());
    }
    let machine = args.machine()?;
    let spec = BenchConfig {
        patterns_per_suite: args.flag_num("patterns", 8)?,
        input_len: args.flag_num("input", 2048)?,
        match_rate: 0.02,
        seed: args.flag_num("seed", 42)?,
    };
    let config = ServeConfig {
        shards: args.flag_num("shards", 2)?,
        queue_pages: args.flag_num("queue-pages", 8)?,
        machine,
    };
    let pipe = attach_store(Pipeline::new(spec), &args)?;

    if let Some(addr) = args.flag("listen") {
        return listen(pipe, config, addr, args.flag_num("for-secs", 0u64)?, out);
    }

    args.positional(0, "suite")?;
    let mut suites = Vec::new();
    let mut i = 0;
    while let Ok(name) = args.positional(i, "suite") {
        suites.push(parse_suite(name)?);
        i += 1;
    }
    let chunk = args.flag_num("chunk", 256usize)?.max(1);

    let server = Server::new(pipe, config);
    let corpora: Vec<_> = suites
        .iter()
        .map(|&s| server.pipeline().corpus(s))
        .collect();
    let sessions: Vec<_> = suites
        .iter()
        .zip(&corpora)
        .map(|(&suite, corpus)| {
            server
                .register(suite.name(), corpus.patterns())
                .map_err(|e| CliError::Runtime(format!("register {}: {e}", suite.name())))
        })
        .collect::<Result<_, _>>()?;

    // Interleave chunk delivery round-robin across the tenants, the way
    // concurrent streams share the fabric; shed chunks retry after the
    // shard drains.
    let mut cursors = vec![0usize; sessions.len()];
    loop {
        let mut progressed = false;
        for (i, session) in sessions.iter().enumerate() {
            let input = corpora[i].input();
            let at = cursors[i];
            if at >= input.len() {
                continue;
            }
            let mut len = chunk.min(input.len() - at);
            loop {
                let piece = &input[at..at + len];
                let outcome = session
                    .send(piece)
                    .map_err(|e| CliError::Runtime(e.to_string()))?;
                if outcome != SendOutcome::Shed {
                    break;
                }
                session.wait_idle();
                if session.pending_bytes() == 0 {
                    // An idle session still sheds: the chunk itself exceeds
                    // the certified intake budget. Split it.
                    if len == 1 {
                        return Err(CliError::Runtime(format!(
                            "tenant {} cannot fit a single byte in its budget",
                            suites[i].name()
                        )));
                    }
                    len = len.div_ceil(2);
                }
            }
            cursors[i] = at + len;
            progressed = true;
        }
        if !progressed {
            break;
        }
    }

    let mut rows = Vec::new();
    for (i, session) in sessions.iter().enumerate() {
        session.finish();
        let mut delivered = session.drain();
        delivered.sort_unstable_by_key(|m| (m.end, m.pattern));
        delivered.dedup();
        let solo = corpora[i].patterns();
        let sim = rap_sim::Simulator::new(machine);
        let plan = server
            .pipeline()
            .plan(&sim, solo, None)
            .map_err(|e| CliError::Runtime(e.to_string()))?;
        let expected = plan.simulate_streaming(corpora[i].input()).0.matches;
        let faithful = delivered == expected;
        rows.push((
            suites[i],
            session.shard(),
            session.stats(),
            delivered.len(),
            faithful,
        ));
    }

    if args.switch("json") {
        outln!(out, "{}", to_json(machine, &config, &rows));
    } else {
        outln!(
            out,
            "serve: {} tenant(s) on {machine} across {} shard(s) ({} patterns each, seed {})",
            rows.len(),
            config.shards,
            spec.patterns_per_suite,
            spec.seed
        );
        outln!(
            out,
            "budget : {} queue page(s) per session (certified intake/event bounds)",
            config.queue_pages
        );
        for (suite, shard, stats, matches, faithful) in &rows {
            outln!(
                out,
                "tenant : {:<12} shard {shard}  {:>4} chunk(s)  {:>3} shed  {:>3} backpressured  \
                 {:>6} byte(s)  {:>4} match(es)  solo-equal {}",
                suite.name(),
                stats.chunks_sent,
                stats.chunks_shed,
                stats.backpressure_events,
                stats.bytes_scanned,
                matches,
                if *faithful { "yes" } else { "NO" }
            );
        }
        let m = server.metrics();
        outln!(
            out,
            "totals : {} byte(s) scanned, {} match(es) delivered, {} backpressure event(s), \
             {} session(s) still active",
            m.bytes_scanned.get(),
            m.matches_delivered.get(),
            m.backpressure_events.get(),
            server.active_sessions()
        );
    }
    if let Some((suite, ..)) = rows.iter().find(|(.., faithful)| !faithful) {
        return Err(CliError::Runtime(format!(
            "tenant {} diverged from its solo streaming run",
            suite.name()
        )));
    }
    Ok(())
}

/// Binds `addr` and serves the framed TCP protocol.
fn listen(
    pipe: Pipeline,
    config: ServeConfig,
    addr: &str,
    for_secs: u64,
    out: &mut dyn Write,
) -> Result<(), CliError> {
    let mut server = Server::new(pipe, config);
    let local = server
        .listen(addr)
        .map_err(|e| CliError::Runtime(format!("bind {addr}: {e}")))?;
    outln!(
        out,
        "serving on {local} ({} shard(s), {} queue page(s))",
        server.config().shards,
        server.config().queue_pages
    );
    out.flush().map_err(|e| CliError::Runtime(e.to_string()))?;
    if for_secs == 0 {
        loop {
            std::thread::sleep(std::time::Duration::from_hours(1));
        }
    }
    std::thread::sleep(std::time::Duration::from_secs(for_secs));
    server.shutdown();
    outln!(
        out,
        "drained: {} session(s) active, {} byte(s) scanned",
        server.active_sessions(),
        server.metrics().bytes_scanned.get()
    );
    Ok(())
}

/// Renders the per-tenant results as one JSON object.
fn to_json(
    machine: rap_circuit::Machine,
    config: &ServeConfig,
    rows: &[(rap_workloads::Suite, usize, SessionStats, usize, bool)],
) -> String {
    let mut s = format!(
        "{{\"machine\": \"{machine}\", \"shards\": {}, \"queue_pages\": {}, \"tenants\": [",
        config.shards, config.queue_pages
    );
    for (i, (suite, shard, stats, matches, faithful)) in rows.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(&format!(
            "{{\"name\": \"{}\", \"shard\": {shard}, \"chunks\": {}, \"shed\": {}, \
             \"backpressure_events\": {}, \"bytes_scanned\": {}, \"matches\": {matches}, \
             \"solo_equal\": {faithful}}}",
            suite.name(),
            stats.chunks_sent,
            stats.chunks_shed,
            stats.backpressure_events,
            stats.bytes_scanned,
        ));
    }
    s.push_str("]}");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_ok(argv: &[&str]) -> String {
        let argv: Vec<String> = argv.iter().map(|s| s.to_string()).collect();
        let mut out = Vec::new();
        run(&argv, &mut out).expect("serve succeeds");
        String::from_utf8(out).expect("utf8")
    }

    #[test]
    fn two_suites_stream_and_match_their_solo_runs() {
        let s = run_ok(&["snort", "yara", "--patterns", "4", "--input", "512"]);
        assert!(s.contains("serve: 2 tenant(s) on RAP"), "{s}");
        assert!(s.contains("tenant : Snort"), "{s}");
        assert!(s.contains("tenant : Yara"), "{s}");
        assert!(s.contains("solo-equal yes"), "{s}");
        assert!(!s.contains("solo-equal NO"), "{s}");
        assert!(s.contains("0 session(s) still active"), "{s}");
    }

    #[test]
    fn json_reports_per_tenant_fidelity() {
        let s = run_ok(&[
            "prosite",
            "--patterns",
            "4",
            "--input",
            "256",
            "--shards",
            "1",
            "--json",
        ]);
        assert!(s.contains("\"tenants\": ["), "{s}");
        assert!(s.contains("\"shard\": 0"), "{s}");
        assert!(s.contains("\"solo_equal\": true"), "{s}");
        assert!(!s.contains("\"solo_equal\": false"), "{s}");
    }

    #[test]
    fn tiny_queue_budget_backpressures_but_stays_faithful() {
        let s = run_ok(&[
            "snort",
            "--patterns",
            "4",
            "--input",
            "1024",
            "--queue-pages",
            "1",
            "--chunk",
            "512",
        ]);
        assert!(s.contains("solo-equal yes"), "{s}");
    }

    #[test]
    fn missing_suite_is_usage_error() {
        let argv: Vec<String> = Vec::new();
        let mut out = Vec::new();
        let err = run(&argv, &mut out).expect_err("no suites");
        assert!(matches!(err, CliError::Usage(_)));
    }

    #[test]
    fn help_prints_flags() {
        let s = run_ok(&["--help"]);
        assert!(s.contains("--shards"), "{s}");
        assert!(s.contains("--queue-pages"), "{s}");
        assert!(s.contains("--listen"), "{s}");
        assert!(s.contains("--store-dir"), "{s}");
    }
}
