//! `rap trace` — run one suite with telemetry attached and render the
//! cycle-sampled trace: per-cycle activity summary plus the hottest
//! arrays by powered tile-cycles.

use super::{outln, parse_suite};
use crate::args::Args;
use crate::CliError;
use rap_pipeline::{BenchConfig, Pipeline};
use rap_telemetry::{traces_to_jsonl, ProbeEvent, RunTrace, Telemetry, TelemetryConfig};
use std::io::Write;
use std::sync::Arc;

const HELP: &str = "\
rap trace — run one benchmark suite with cycle-level profiling enabled

Evaluates one (machine, suite) cell through the full pipeline with the
telemetry subsystem attached, then summarizes the probe journal: a
bucketed per-cycle activity profile and the top-N hottest arrays.

USAGE:
    rap trace <suite> [FLAGS]

SUITES:
    regexlib spamassassin snort suricata prosite yara clamav

FLAGS:
    --machine M     rap | cama | bvap | ca       (default rap)
    --patterns N    patterns to generate         (default 40)
    --input N       input length in bytes        (default 20000)
    --seed S        RNG seed                     (default 42)
    --sample N      probe sampling period, cycles (default 16)
    --top N         hottest arrays to list       (default 5)
    --out FILE      also write the raw JSONL trace to FILE
    --json          emit the raw JSONL trace on stdout instead of the
                    rendered summary
    --store-dir D   persistent artifact store directory: recall the plan
                    from an earlier run instead of recompiling";

/// Width of the activity profile's bar column.
const BAR_WIDTH: usize = 40;
/// Number of cycle buckets in the activity profile.
const PROFILE_BUCKETS: u64 = 16;

/// Runs the subcommand.
pub fn run(argv: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let args = Args::parse(argv)?;
    if args.wants_help() {
        outln!(out, "{HELP}");
        return Ok(());
    }
    let suite = parse_suite(args.positional(0, "suite")?)?;
    let machine = args.machine()?;
    let spec = BenchConfig {
        patterns_per_suite: args.flag_num("patterns", 40)?,
        input_len: args.flag_num("input", 20_000)?,
        match_rate: 0.02,
        seed: args.flag_num("seed", 42)?,
    };
    let telemetry = Arc::new(Telemetry::new(TelemetryConfig {
        sample_every: args.flag_num("sample", 16)?,
        ..TelemetryConfig::default()
    }));
    let top: usize = args.flag_num("top", 5)?;

    let pipe = super::attach_store(
        Pipeline::new(spec).with_telemetry(Arc::clone(&telemetry)),
        &args,
    )?;
    let corpus = pipe.corpus(suite);
    let summary = pipe
        .eval(machine, suite, corpus.patterns(), corpus.input(), None)
        .map_err(|e| CliError::Runtime(e.to_string()))?;
    let traces = telemetry.drain_traces();

    if let Some(path) = args.flag("out") {
        std::fs::write(path, traces_to_jsonl(&traces))
            .map_err(|e| CliError::Runtime(format!("cannot write {path}: {e}")))?;
        if !args.switch("json") {
            outln!(out, "[written {path}]");
        }
    }

    if args.switch("json") {
        // Machine-readable mode: the raw probe journal, one JSON object
        // per line, same schema as --out FILE.
        out.write_all(traces_to_jsonl(&traces).as_bytes())
            .map_err(|e| CliError::Runtime(e.to_string()))?;
        return Ok(());
    }

    outln!(
        out,
        "trace: {machine} on {} ({} patterns, {} input bytes, seed {}, sample every {})",
        suite.name(),
        spec.patterns_per_suite,
        spec.input_len,
        spec.seed,
        telemetry.config().sample_every
    );
    outln!(out, "");
    for trace in &traces {
        render_trace(out, trace, top)?;
    }
    outln!(out, "run summary:");
    outln!(out, "  states      : {}", summary.states);
    outln!(out, "  matches     : {}", summary.matches);
    outln!(out, "  energy      : {:.4} uJ", summary.energy_uj);
    outln!(out, "  area        : {:.4} mm2", summary.area_mm2);
    outln!(out, "  throughput  : {:.3} Gch/s", summary.throughput_gchps);
    outln!(out, "  power       : {:.4} W", summary.power_w);
    Ok(())
}

/// Renders one run's journal: activity profile, hottest arrays, totals.
fn render_trace(out: &mut dyn Write, trace: &RunTrace, top: usize) -> Result<(), CliError> {
    outln!(
        out,
        "run {:?}: {} events{}",
        trace.label,
        trace.events.len(),
        if trace.dropped > 0 {
            format!(" ({} dropped, raise RAP_TRACE_RING)", trace.dropped)
        } else {
            String::new()
        }
    );
    render_activity(out, &trace.events)?;
    render_hottest(out, &trace.events, top)?;
    for event in &trace.events {
        if let ProbeEvent::RunEnd {
            input_bytes,
            cycles,
            stall_cycles,
            powered_tile_cycles,
            matches,
        } = event
        {
            outln!(
                out,
                "  totals: {input_bytes} bytes in {cycles} cycles ({stall_cycles} stall), \
                 {powered_tile_cycles} powered tile-cycles, {matches} matches"
            );
        }
    }
    outln!(out, "");
    Ok(())
}

/// Buckets the `Array` samples over the cycle axis and draws one bar per
/// bucket scaled to the peak mean active-state count.
fn render_activity(out: &mut dyn Write, events: &[ProbeEvent]) -> Result<(), CliError> {
    let samples: Vec<(u64, u64, u64)> = events
        .iter()
        .filter_map(|e| match e {
            ProbeEvent::Array {
                cycle,
                active_states,
                powered_tiles,
                ..
            } => Some((*cycle, *active_states, *powered_tiles)),
            _ => None,
        })
        .collect();
    let Some(max_cycle) = samples.iter().map(|s| s.0).max() else {
        outln!(out, "  (no array samples journalled)");
        return Ok(());
    };
    let span = (max_cycle + 1).div_ceil(PROFILE_BUCKETS).max(1);
    // (sample count, active-state sum, powered-tile sum) per cycle bucket.
    let mut buckets = vec![(0u64, 0u64, 0u64); PROFILE_BUCKETS as usize];
    for (cycle, active, powered) in samples {
        let b = ((cycle / span) as usize).min(buckets.len() - 1);
        buckets[b].0 += 1;
        buckets[b].1 += active;
        buckets[b].2 += powered;
    }
    let peak = buckets
        .iter()
        .filter(|(n, ..)| *n > 0)
        .map(|(n, active, _)| active / n)
        .max()
        .unwrap_or(0);
    outln!(out, "  cycle activity (mean active states per sample):");
    for (i, (n, active, powered)) in buckets.iter().enumerate() {
        if *n == 0 {
            continue;
        }
        let mean_active = active / n;
        let mean_powered = powered / n;
        let bar = if peak == 0 {
            0
        } else {
            ((mean_active * BAR_WIDTH as u64).div_ceil(peak) as usize).min(BAR_WIDTH)
        };
        outln!(
            out,
            "  [{:>8}..{:>8}] {:<width$} {mean_active} active, {mean_powered} tiles powered",
            i as u64 * span,
            (i as u64 + 1) * span - 1,
            "#".repeat(bar),
            width = BAR_WIDTH
        );
    }
    Ok(())
}

/// Lists the `top` arrays by powered tile-cycles from the end-of-run
/// per-array totals.
fn render_hottest(out: &mut dyn Write, events: &[ProbeEvent], top: usize) -> Result<(), CliError> {
    let mut ends: Vec<(u32, u64, u64, u64, u64)> = events
        .iter()
        .filter_map(|e| match e {
            ProbeEvent::ArrayEnd {
                array,
                cycles,
                stall_cycles,
                powered_tile_cycles,
                matches,
            } => Some((
                *array,
                *cycles,
                *stall_cycles,
                *powered_tile_cycles,
                *matches,
            )),
            _ => None,
        })
        .collect();
    if ends.is_empty() {
        return Ok(());
    }
    ends.sort_by(|a, b| b.3.cmp(&a.3).then(a.0.cmp(&b.0)));
    outln!(out, "  hottest arrays (by powered tile-cycles):");
    outln!(
        out,
        "    array     cycles      stall  tile-cycles    matches"
    );
    for (array, cycles, stall, powered, matches) in ends.iter().take(top) {
        outln!(
            out,
            "    {array:>5} {cycles:>10} {stall:>10} {powered:>12} {matches:>10}"
        );
    }
    if ends.len() > top {
        outln!(out, "    ... and {} more (raise --top)", ends.len() - top);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_ok(argv: &[&str]) -> String {
        let argv: Vec<String> = argv.iter().map(|s| s.to_string()).collect();
        let mut out = Vec::new();
        run(&argv, &mut out).expect("trace succeeds");
        String::from_utf8(out).expect("utf8")
    }

    #[test]
    fn traces_and_summarizes() {
        let s = run_ok(&[
            "snort",
            "--patterns",
            "4",
            "--input",
            "2000",
            "--sample",
            "8",
        ]);
        assert!(s.contains("run \"RAP/Snort\""), "{s}");
        assert!(s.contains("cycle activity"), "{s}");
        assert!(s.contains("hottest arrays"), "{s}");
        assert!(s.contains("totals:"), "{s}");
        assert!(s.contains("run summary:"), "{s}");
    }

    #[test]
    fn machine_flag_changes_label() {
        let s = run_ok(&[
            "yara",
            "--machine",
            "ca",
            "--patterns",
            "3",
            "--input",
            "1000",
        ]);
        assert!(s.contains("run \"CA/Yara\""), "{s}");
    }

    #[test]
    fn out_writes_jsonl() {
        let dir = std::env::temp_dir().join("rap-cli-trace");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("t.jsonl");
        let path_s = path.to_str().expect("utf8").to_string();
        let s = run_ok(&[
            "snort",
            "--patterns",
            "3",
            "--input",
            "1000",
            "--out",
            &path_s,
        ]);
        assert!(s.contains("[written"), "{s}");
        let text = std::fs::read_to_string(&path).expect("trace file");
        assert!(text.contains("\"event\":\"run_start\""), "{text}");
        assert!(text.contains("\"event\":\"run_end\""), "{text}");
    }

    #[test]
    fn json_streams_the_journal_to_stdout() {
        let s = run_ok(&["snort", "--patterns", "3", "--input", "1000", "--json"]);
        assert!(s.contains("\"event\":\"run_start\""), "{s}");
        assert!(s.contains("\"event\":\"run_end\""), "{s}");
        assert!(!s.contains("cycle activity"), "no rendered summary: {s}");
    }

    #[test]
    fn unknown_suite_is_usage_error() {
        let argv = vec!["nosuch".to_string()];
        let mut out = Vec::new();
        assert!(matches!(run(&argv, &mut out), Err(CliError::Usage(_))));
    }

    #[test]
    fn help_prints_flags() {
        let s = run_ok(&["--help"]);
        assert!(s.contains("--sample"), "{s}");
        assert!(s.contains("--top"), "{s}");
    }
}
