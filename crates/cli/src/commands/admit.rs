//! `rap admit` — static multi-tenant admission over benchmark suites,
//! through the pipeline's Admit stage.

use super::{attach_store, outln, parse_suite};
use crate::args::Args;
use crate::CliError;
use rap_admit::AdmitOptions;
use rap_analyze::SoundnessConfig;
use rap_pipeline::{Admission, BenchConfig, PatternSet, Pipeline};
use rap_sim::Simulator;
use std::io::Write;

const HELP: &str = "\
rap admit — decide whether suites can share one fabric without interference

Treats each named suite as an independent tenant (its own verified solo
plan), then runs the rap-admit static interference analyzer over the
proposed composition: exclusive placement (S001), bank output buffers
(S002/S005), routing-port fan-in (S003), counter column budget (S004),
match-ID namespaces (S006), hot-swap feasibility (S007), and — opt-in —
cross-tenant prefix overlap by product construction (S008). A certified
composition is compiled into one verified co-resident plan; a rejection
lists the violated budgets. Exits non-zero when the composition is
rejected.

USAGE:
    rap admit <suite> [<suite>...] [FLAGS]

SUITES:
    regexlib spamassassin snort suricata prosite yara clamav

FLAGS:
    --machine M     rap | cama | bvap | ca       (default rap)
    --patterns N    patterns per tenant suite    (default 24)
    --seed S        RNG seed                     (default 42)
    --banks N       fix the shared fabric at N banks (default: auto-size
                    the smallest fabric that fits every tenant)
    --bv-budget N   cap fabric-wide counter/BV columns at N
    --overlap       probe cross-tenant prefix overlap (S008) by budgeted
                    product construction
    --budget N      overlap: joint configurations explored per image pair
                    before the probe returns inconclusively (default 4096)
    --store-dir D   persistent artifact store directory: solo and composed
                    plans are recalled from earlier runs
    --json          emit the admission analysis as JSON on stdout";

/// Runs the subcommand.
pub fn run(argv: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let args = Args::parse(argv)?;
    if args.wants_help() {
        outln!(out, "{HELP}");
        return Ok(());
    }
    args.positional(0, "suite")?;
    let mut suites = Vec::new();
    let mut i = 0;
    while let Ok(name) = args.positional(i, "suite") {
        suites.push(parse_suite(name)?);
        i += 1;
    }
    let machine = args.machine()?;
    let spec = BenchConfig {
        patterns_per_suite: args.flag_num("patterns", 24)?,
        input_len: 256, // admission is input-independent; keep the corpus tiny
        match_rate: 0.02,
        seed: args.flag_num("seed", 42)?,
    };
    let options = AdmitOptions {
        banks: match args.flag("banks") {
            None => None,
            Some(_) => Some(args.flag_num("banks", 0)?),
        },
        bv_column_budget: match args.flag("bv-budget") {
            None => None,
            Some(_) => Some(args.flag_num("bv-budget", 0)?),
        },
        overlap: args.switch("overlap").then_some(SoundnessConfig {
            max_configs: args.flag_num("budget", 4096)?,
        }),
        ..AdmitOptions::default()
    };

    let pipe = attach_store(Pipeline::new(spec), &args)?;
    let corpora: Vec<_> = suites.iter().map(|&s| pipe.corpus(s)).collect();
    let sims: Vec<Simulator> = suites
        .iter()
        .map(|&s| pipe.simulator_for(machine, s))
        .collect();
    let tenants: Vec<(&str, &Simulator, &PatternSet)> = suites
        .iter()
        .zip(&sims)
        .zip(&corpora)
        .map(|((s, sim), corpus)| (s.name(), sim, corpus.patterns()))
        .collect();
    let admission = pipe
        .admit(&tenants, &options)
        .map_err(|e| CliError::Runtime(e.to_string()))?;
    let analysis = &admission.analysis;

    if args.switch("json") {
        outln!(out, "{}", to_json(&admission, machine));
    } else {
        outln!(
            out,
            "admit: {} tenant(s) on {machine} ({} patterns each, seed {})",
            analysis.tenants.len(),
            spec.patterns_per_suite,
            spec.seed
        );
        outln!(
            out,
            "fabric  : {} bank(s), {} slot(s), {} array(s) requested",
            analysis.banks,
            analysis.slots,
            analysis.total_arrays
        );
        for t in &analysis.tenants {
            outln!(
                out,
                "tenant  : {:<12} {:>4} pattern(s)  {:>3} array(s)  match-ids [{}, {})  \
                 hot-swap {}",
                t.name,
                t.patterns,
                t.arrays,
                t.match_ids.0,
                t.match_ids.1,
                if t.hot_swappable { "yes" } else { "no" }
            );
        }
        outln!(
            out,
            "columns : {} of {} counter/BV column(s)",
            analysis.bv_columns,
            analysis.bv_budget
        );
        if options.overlap.is_some() {
            outln!(
                out,
                "overlap : {} joint configuration(s) explored",
                analysis.overlap_explored
            );
        }
        if analysis.report.is_empty() {
            outln!(out, "no findings");
        } else {
            out.write_all(analysis.report.to_string().as_bytes())
                .map_err(|e| CliError::Runtime(e.to_string()))?;
        }
        outln!(
            out,
            "verdict : {}",
            if admission.admitted() {
                "admitted"
            } else {
                "rejected"
            }
        );
    }
    if !admission.admitted() {
        return Err(CliError::Runtime(format!(
            "composition rejected: {} error(s)",
            analysis.report.errors().count()
        )));
    }
    Ok(())
}

/// Renders the admission as one JSON object: fabric sizing, per-tenant
/// decisions, and the findings in the shared rap-diag schema.
fn to_json(admission: &Admission, machine: rap_circuit::Machine) -> String {
    let analysis = &admission.analysis;
    let mut s = format!(
        "{{\"machine\": \"{machine}\", \"admitted\": {}, \"banks\": {}, \"slots\": {}, \
         \"arrays\": {}, \"bv_columns\": {}, \"bv_budget\": {}, \"overlap_explored\": {}",
        admission.admitted(),
        analysis.banks,
        analysis.slots,
        analysis.total_arrays,
        analysis.bv_columns,
        analysis.bv_budget,
        analysis.overlap_explored
    );
    s.push_str(", \"tenants\": [");
    for (i, t) in analysis.tenants.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(&format!(
            "{{\"name\": \"{}\", \"patterns\": {}, \"arrays\": {}, \"match_ids\": [{}, {}], \
             \"hot_swappable\": {}}}",
            t.name, t.patterns, t.arrays, t.match_ids.0, t.match_ids.1, t.hot_swappable
        ));
    }
    s.push_str(&format!("], \"report\": {}}}", analysis.report.to_json()));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_ok(argv: &[&str]) -> String {
        let argv: Vec<String> = argv.iter().map(|s| s.to_string()).collect();
        let mut out = Vec::new();
        run(&argv, &mut out).expect("admit succeeds");
        String::from_utf8(out).expect("utf8")
    }

    fn run_err(argv: &[&str]) -> (String, CliError) {
        let argv: Vec<String> = argv.iter().map(|s| s.to_string()).collect();
        let mut out = Vec::new();
        let err = run(&argv, &mut out).expect_err("admit fails");
        (String::from_utf8(out).expect("utf8"), err)
    }

    #[test]
    fn two_tenants_admit_on_an_auto_sized_fabric() {
        let s = run_ok(&["snort", "yara", "--patterns", "8"]);
        assert!(s.contains("admit: 2 tenant(s) on RAP"), "{s}");
        assert!(s.contains("verdict : admitted"), "{s}");
        assert!(s.contains("tenant  : Snort"), "{s}");
        assert!(s.contains("tenant  : Yara"), "{s}");
    }

    #[test]
    fn json_carries_verdict_and_findings() {
        let s = run_ok(&["snort", "prosite", "--patterns", "8", "--json"]);
        assert!(s.contains("\"admitted\": true"), "{s}");
        assert!(s.contains("\"legal\": true"), "{s}");
        assert!(s.contains("\"tenants\": ["), "{s}");
    }

    #[test]
    fn fixed_fabric_over_subscription_is_rejected() {
        let (s, err) = run_err(&[
            "snort",
            "yara",
            "clamav",
            "suricata",
            "--patterns",
            "8",
            "--banks",
            "1",
        ]);
        assert!(matches!(err, CliError::Runtime(_)));
        assert!(s.contains("verdict : rejected"), "{s}");
        assert!(s.contains("S001"), "{s}");
    }

    #[test]
    fn overlap_probe_reports_exploration() {
        let s = run_ok(&["prosite", "regexlib", "--patterns", "4", "--overlap"]);
        assert!(s.contains("overlap :"), "{s}");
    }

    #[test]
    fn store_dir_persists_solo_and_composed_plans() {
        let dir = std::env::temp_dir().join(format!(
            "rap-cli-admit-store-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let d = dir.to_str().expect("utf8");
        run_ok(&["snort", "yara", "--patterns", "4", "--store-dir", d]);
        let store = rap_pipeline::DiskStore::open(rap_pipeline::StoreConfig::at(&dir))
            .expect("store opens");
        assert_eq!(store.len(), 3, "two solo plans plus the composed plan");
        drop(store);
        let s = run_ok(&["yara", "snort", "--patterns", "4", "--store-dir", d]);
        assert!(s.contains("verdict : admitted"), "{s}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_suite_is_usage_error() {
        let (_, err) = run_err(&["nosuch"]);
        assert!(matches!(err, CliError::Usage(_)));
    }

    #[test]
    fn missing_suite_is_usage_error() {
        let (_, err) = run_err(&[]);
        assert!(matches!(err, CliError::Usage(_)));
    }

    #[test]
    fn help_prints_flags() {
        let s = run_ok(&["--help"]);
        assert!(s.contains("--banks"), "{s}");
        assert!(s.contains("--overlap"), "{s}");
        assert!(s.contains("--store-dir"), "{s}");
    }
}
