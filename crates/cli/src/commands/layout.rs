//! `rap layout` — render the tile-level placement of a compiled workload.

use super::{outln, parse_all};
use crate::args::Args;
use crate::{read_patterns, CliError};
use rap_circuit::Machine;
use rap_compiler::Compiled;
use rap_mapper::ArrayKind;
use rap_sim::Simulator;
use std::io::Write;

const HELP: &str = "\
rap layout — show per-array tile occupancy after mapping

USAGE:
    rap layout <patterns.txt> [--depth N] [--bin N]

Each tile renders as a 16-cell bar (one cell per 8 of its 128 columns).";

/// Runs the subcommand.
pub fn run(argv: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let args = Args::parse(argv)?;
    if args.wants_help() {
        outln!(out, "{HELP}");
        return Ok(());
    }
    let patterns = read_patterns(args.positional(0, "patterns.txt")?)?;
    let parsed = parse_all(&patterns)?;
    let sim = Simulator::new(Machine::Rap)
        .with_bv_depth(args.flag_num("depth", 8)?)
        .with_bin_size(args.flag_num("bin", 8)?);
    let compiled = sim
        .compile_parsed(&parsed)
        .map_err(|e| CliError::Runtime(e.to_string()))?;
    let mapping = sim.map(&compiled);

    for (ai, plan) in mapping.arrays.iter().enumerate() {
        let tile_cols = mapping.config.arch.tile_columns;
        match &plan.kind {
            ArrayKind::Nfa { placements } | ArrayKind::Nbva { placements, .. } => {
                let label = match &plan.kind {
                    ArrayKind::Nbva { depth, .. } => format!("NBVA, depth {depth}"),
                    _ => "NFA".to_string(),
                };
                outln!(out, "array {ai} ({label}): {} tiles", plan.tiles_used);
                let mut tile_cols_used = vec![0u32; plan.tiles_used as usize];
                let mut tile_patterns = vec![Vec::<usize>::new(); plan.tiles_used as usize];
                for p in placements {
                    let cols: &[u32] = match &compiled[p.pattern] {
                        Compiled::Nfa(img) => &img.state_columns,
                        Compiled::Nbva(img) => &img.state_columns,
                        Compiled::Lnfa(_) => unreachable!("mode-homogeneous array"),
                    };
                    for (q, &t) in p.state_tile.iter().enumerate() {
                        tile_cols_used[t as usize] += cols[q];
                        if tile_patterns[t as usize].last() != Some(&p.pattern) {
                            tile_patterns[t as usize].push(p.pattern);
                        }
                    }
                }
                for (t, (&used, pats)) in
                    tile_cols_used.iter().zip(tile_patterns.iter()).enumerate()
                {
                    outln!(
                        out,
                        "  tile {t:>2} |{}| {used:>3}/{tile_cols} cols  patterns {:?}",
                        bar(used, tile_cols),
                        pats
                    );
                }
            }
            ArrayKind::Lnfa { bins } => {
                outln!(out, "array {ai} (LNFA): {} tiles", plan.tiles_used);
                for (bi, bin) in bins.iter().enumerate() {
                    let path = match bin.members.first().map(|m| m.path) {
                        Some(rap_compiler::MatchPath::Cam) => "CAM",
                        Some(rap_compiler::MatchPath::LocalSwitch) => "switch",
                        None => "?",
                    };
                    let patterns: Vec<usize> = bin.members.iter().map(|m| m.pattern).collect();
                    outln!(
                        out,
                        "  bin {bi:>2} [{path:>6}] tiles {}..{}  {} chains x {} col regions  patterns {:?}",
                        bin.first_tile,
                        bin.first_tile + bin.tiles,
                        bin.members.len(),
                        bin.region_columns,
                        patterns
                    );
                }
            }
        }
    }
    outln!(
        out,
        "total: {} arrays, {} tiles, {:.0}% column utilization",
        mapping.arrays.len(),
        mapping.tiles_used(),
        mapping.utilization() * 100.0
    );
    Ok(())
}

/// A 16-cell occupancy bar.
fn bar(used: u32, total: u32) -> String {
    let cells = 16u32;
    let filled = (used * cells).div_ceil(total.max(1)).min(cells);
    let mut s = String::with_capacity(cells as usize);
    for i in 0..cells {
        s.push(if i < filled { '#' } else { '.' });
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_all_modes() {
        let dir = std::env::temp_dir().join("rap-cli-layout");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let p = dir.join("p.txt");
        std::fs::write(&p, "abcdef\nx{60}y\nq.*r\n").expect("write");
        let argv = vec![p.to_str().expect("utf8").to_string()];
        let mut out = Vec::new();
        run(&argv, &mut out).expect("layout succeeds");
        let s = String::from_utf8(out).expect("utf8");
        assert!(s.contains("NBVA"), "{s}");
        assert!(s.contains("LNFA"), "{s}");
        assert!(s.contains("NFA"), "{s}");
        assert!(s.contains("column utilization"), "{s}");
        assert!(s.contains('#'), "{s}");
    }

    #[test]
    fn bar_shape() {
        assert_eq!(bar(0, 128), "................");
        assert_eq!(bar(128, 128), "################");
        assert_eq!(bar(64, 128), "########........");
    }
}
