//! `rap dot` — render a pattern's Glushkov automaton in Graphviz DOT.

use super::outln;
use crate::args::Args;
use crate::CliError;
use rap_automata::nfa::Nfa;
use std::io::Write;

const HELP: &str = "\
rap dot — print a pattern's Glushkov automaton in Graphviz DOT syntax

USAGE:
    rap dot <pattern>

Pipe into graphviz, e.g.:  rap dot 'a(.a){3}b' | dot -Tsvg > nfa.svg";

/// Runs the subcommand.
pub fn run(argv: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let args = Args::parse(argv)?;
    if args.wants_help() {
        outln!(out, "{HELP}");
        return Ok(());
    }
    let pattern = args.positional(0, "pattern")?;
    let re = rap_regex::parse(pattern)
        .map_err(|e| CliError::Runtime(format!("pattern {pattern:?}: {e}")))?;
    let nfa = Nfa::from_regex(&re);
    write!(out, "{}", nfa.to_dot(pattern)).map_err(|e| CliError::Runtime(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_paper_example() {
        let argv = vec!["a(.a){3}b".to_string()];
        let mut out = Vec::new();
        run(&argv, &mut out).expect("dot succeeds");
        let s = String::from_utf8(out).expect("utf8");
        assert!(s.contains("digraph"));
        // The unfolded automaton has 8 states, q7 final.
        assert!(s.contains("q7 [shape=doublecircle"));
        assert!(s.contains("q0 -> q1"));
    }

    #[test]
    fn bad_pattern_is_runtime_error() {
        let argv = vec!["(".to_string()];
        let mut out = Vec::new();
        assert!(matches!(run(&argv, &mut out), Err(CliError::Runtime(_))));
    }
}
