//! `rap cache` — inspect and manage the persistent artifact store.
//!
//! Pipeline runs with a store attached (`--store-dir` on `rap bound` /
//! `rap trace`, `RAP_STORE_DIR` for the bench harness) write verified
//! plans into a content-addressed directory; this command is the
//! operator surface over that directory: occupancy and lifetime hit
//! rates (`stats`), size-budgeted LRU eviction (`gc`), and full wipe
//! (`clear`).

use super::outln;
use crate::args::Args;
use crate::CliError;
use rap_diag::{Location, Report, RuleCode, Severity};
use rap_pipeline::{DiskStore, StoreConfig, TierStats};
use std::io::Write;

const HELP: &str = "\
rap cache — inspect and manage the persistent artifact store

The store is a content-addressed directory of verified plans, keyed by
the pipeline's stable FNV-1a/128 cache keys. Entries carry a versioned
header and payload checksum; loads re-verify through the V-rules, so a
corrupt entry is discarded and rebuilt, never trusted.

USAGE:
    rap cache <ACTION> [FLAGS]

ACTIONS:
    stats    Entry count, bytes on disk, and lifetime hit/miss/corrupt
             counters with the disk-tier hit rate
    gc       Evict least-recently-used entries until the store fits
             --max-bytes
    clear    Remove every entry (and the lifetime counters)

FLAGS:
    --store-dir DIR   store directory (default $XDG_CACHE_HOME/rap/store
                      or ~/.cache/rap/store)
    --max-bytes N     gc: size budget in bytes (required for gc)
    --json            emit a JSON object; findings use the shared
                      rap-diag schema under \"report\"";

/// Store-health findings `rap cache` can raise (shared rap-diag codes).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheRule {
    /// C001: entries failed integrity or re-verification and were
    /// discarded over the store's lifetime.
    Corrupt,
    /// C002: entries written by a different store-format version were
    /// skipped (rebuilt, file left in place).
    Stale,
}

impl CacheRule {
    /// Every rule, in code order (append-only, like the other families).
    pub fn all() -> [CacheRule; 2] {
        [CacheRule::Corrupt, CacheRule::Stale]
    }
}

impl RuleCode for CacheRule {
    fn code(&self) -> &'static str {
        match self {
            CacheRule::Corrupt => "C001-corrupt-entries",
            CacheRule::Stale => "C002-stale-version",
        }
    }
}

/// Health findings derived from the lifetime counters. Corruption is a
/// warning (the store self-healed by rebuilding, but bit rot or tampering
/// happened); stale versions are informational (expected across upgrades).
fn health_report(stats: &TierStats) -> Report<CacheRule> {
    let mut report = Report::default();
    if stats.corrupt > 0 {
        report.push(
            CacheRule::Corrupt,
            Severity::Warning,
            Location::default(),
            format!(
                "{} corrupt entr{} discarded and rebuilt over the store's lifetime",
                stats.corrupt,
                if stats.corrupt == 1 { "y" } else { "ies" }
            ),
        );
    }
    if stats.stale > 0 {
        report.push(
            CacheRule::Stale,
            Severity::Info,
            Location::default(),
            format!(
                "{} load(s) skipped entries from a different store-format version",
                stats.stale
            ),
        );
    }
    report
}

/// Resolves the store directory from `--store-dir` or the user default.
fn resolve_dir(args: &Args) -> Result<StoreConfig, CliError> {
    match args.flag("store-dir") {
        Some(dir) => Ok(StoreConfig::at(dir)),
        None => StoreConfig::default_dir()
            .map(StoreConfig::at)
            .ok_or_else(|| {
                CliError::Usage(
                    "no --store-dir given and neither $XDG_CACHE_HOME nor $HOME is set".to_string(),
                )
            }),
    }
}

/// Runs the subcommand.
pub fn run(argv: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let args = Args::parse(argv)?;
    if args.wants_help() {
        outln!(out, "{HELP}");
        return Ok(());
    }
    let action = args.positional(0, "action")?.to_string();
    let config = resolve_dir(&args)?;
    let dir = config.dir.clone();
    let store =
        DiskStore::open(config).map_err(|e| CliError::Runtime(format!("open {dir:?}: {e}")))?;
    let json = args.switch("json");

    match action.as_str() {
        "stats" => {
            let entries = store.entries();
            let bytes: u64 = entries.iter().map(|e| e.bytes).sum();
            let stats = store.cumulative_stats();
            let report = health_report(&stats);
            if json {
                outln!(
                    out,
                    "{{\"dir\": \"{}\", \"entries\": {}, \"bytes\": {}, \
                     \"tiers\": {{\"disk\": {{\"hits\": {}, \"misses\": {}, \
                     \"writes\": {}, \"corrupt\": {}, \"stale\": {}, \
                     \"evictions\": {}, \"hit_rate\": {:.4}}}}}, \"report\": {}}}",
                    rap_diag::json_escape(&dir.display().to_string()),
                    entries.len(),
                    bytes,
                    stats.hits,
                    stats.misses,
                    stats.writes,
                    stats.corrupt,
                    stats.stale,
                    stats.evictions,
                    stats.hit_rate(),
                    report.to_json()
                );
            } else {
                outln!(out, "store   : {}", dir.display());
                outln!(out, "entries : {} ({bytes} bytes)", entries.len());
                outln!(
                    out,
                    "disk    : {} hits, {} misses ({:.1}% hit rate), {} writes",
                    stats.hits,
                    stats.misses,
                    stats.hit_rate() * 100.0,
                    stats.writes
                );
                outln!(
                    out,
                    "health  : {} corrupt, {} stale, {} evicted",
                    stats.corrupt,
                    stats.stale,
                    stats.evictions
                );
                if !report.is_empty() {
                    out.write_all(report.to_string().as_bytes())
                        .map_err(|e| CliError::Runtime(e.to_string()))?;
                }
            }
        }
        "gc" => {
            let max_bytes: u64 =
                args.flag_num("max-bytes", u64::MAX).and_then(|v: u64| {
                    match args.flag("max-bytes") {
                        Some(_) => Ok(v),
                        None => Err(CliError::Usage(
                            "gc needs --max-bytes <n> (the size budget)".to_string(),
                        )),
                    }
                })?;
            let evicted = store.evict_to(max_bytes);
            let remaining = store.total_bytes();
            if json {
                outln!(
                    out,
                    "{{\"evicted\": {evicted}, \"remaining_bytes\": {remaining}, \
                     \"max_bytes\": {max_bytes}, \"report\": {}}}",
                    Report::<CacheRule>::default().to_json()
                );
            } else {
                outln!(
                    out,
                    "gc: evicted {evicted} entr{}, {remaining} bytes remain (budget {max_bytes})",
                    if evicted == 1 { "y" } else { "ies" }
                );
            }
        }
        "clear" => {
            let removed = store.clear();
            if json {
                outln!(
                    out,
                    "{{\"removed\": {removed}, \"report\": {}}}",
                    Report::<CacheRule>::default().to_json()
                );
            } else {
                outln!(
                    out,
                    "clear: removed {removed} entr{}",
                    if removed == 1 { "y" } else { "ies" }
                );
            }
        }
        other => {
            return Err(CliError::Usage(format!(
                "unknown cache action {other:?} (expected stats, gc, or clear)"
            )))
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rap_pipeline::CacheKey;

    fn run_ok(argv: &[&str]) -> String {
        let argv: Vec<String> = argv.iter().map(|s| s.to_string()).collect();
        let mut out = Vec::new();
        run(&argv, &mut out).expect("cache command succeeds");
        String::from_utf8(out).expect("utf8")
    }

    fn temp_store(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "rap-cli-cache-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn stats_reports_entries_and_rates() {
        let dir = temp_store("stats");
        {
            let store = DiskStore::open(StoreConfig::at(&dir)).expect("opens");
            store.store(CacheKey(1), b"abc");
            assert!(store.load(CacheKey(1)).is_some());
        }
        let s = run_ok(&["stats", "--store-dir", dir.to_str().expect("utf8")]);
        assert!(s.contains("entries : 1"), "{s}");
        assert!(
            s.contains("1 hits, 0 misses (100.0% hit rate), 1 writes"),
            "{s}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stats_json_carries_tiers_and_diag_report() {
        let dir = temp_store("stats-json");
        {
            let store = DiskStore::open(StoreConfig::at(&dir)).expect("opens");
            store.store(CacheKey(7), b"payload");
        }
        let s = run_ok(&[
            "stats",
            "--store-dir",
            dir.to_str().expect("utf8"),
            "--json",
        ]);
        assert!(s.contains("\"entries\": 1"), "{s}");
        assert!(s.contains("\"hit_rate\""), "{s}");
        assert!(s.contains("\"legal\": true"), "{s}");
        assert!(s.contains("\"findings\": []"), "{s}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corruption_surfaces_as_diag_finding() {
        let dir = temp_store("corrupt");
        {
            let store = DiskStore::open(StoreConfig::at(&dir)).expect("opens");
            store.store(CacheKey(9), b"to-be-damaged");
            let path = store.path_for(CacheKey(9));
            let mut bytes = std::fs::read(&path).expect("entry exists");
            let last = bytes.len() - 1;
            bytes[last] ^= 0x40;
            std::fs::write(&path, &bytes).expect("rewrites");
            assert!(store.load(CacheKey(9)).is_none(), "checksum rejects");
        }
        let s = run_ok(&[
            "stats",
            "--store-dir",
            dir.to_str().expect("utf8"),
            "--json",
        ]);
        assert!(s.contains("C001-corrupt-entries"), "{s}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_enforces_budget_and_clear_wipes() {
        let dir = temp_store("gc");
        {
            let store = DiskStore::open(StoreConfig::at(&dir)).expect("opens");
            for i in 0..3u128 {
                store.store(CacheKey(i), &[0u8; 64]);
                std::thread::sleep(std::time::Duration::from_millis(15));
            }
        }
        let dir_s = dir.to_str().expect("utf8");
        let s = run_ok(&["gc", "--store-dir", dir_s, "--max-bytes", "150", "--json"]);
        assert!(s.contains("\"evicted\": 2"), "{s}");
        let s = run_ok(&["clear", "--store-dir", dir_s]);
        assert!(s.contains("removed 1 entry"), "{s}");
        let s = run_ok(&["stats", "--store-dir", dir_s]);
        assert!(s.contains("entries : 0"), "{s}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_without_budget_is_usage_error() {
        let dir = temp_store("gc-usage");
        let argv = vec![
            "gc".to_string(),
            "--store-dir".to_string(),
            dir.to_str().expect("utf8").to_string(),
        ];
        let mut out = Vec::new();
        assert!(matches!(run(&argv, &mut out), Err(CliError::Usage(_))));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_action_is_usage_error() {
        let dir = temp_store("action");
        let argv = vec![
            "frob".to_string(),
            "--store-dir".to_string(),
            dir.to_str().expect("utf8").to_string(),
        ];
        let mut out = Vec::new();
        assert!(matches!(run(&argv, &mut out), Err(CliError::Usage(_))));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn help_prints_actions() {
        let s = run_ok(&["--help"]);
        assert!(s.contains("stats"), "{s}");
        assert!(s.contains("--max-bytes"), "{s}");
    }
}
