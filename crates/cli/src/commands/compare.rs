//! `rap compare` — run all four machines plus the software engines on one
//! workload and print a comparison table.

use super::{attach_store, outln, parse_all};
use crate::args::Args;
use crate::{read_patterns, CliError};
use rap_circuit::Machine;
use rap_engines::{measure_throughput_gchps, Engine, ShiftAndEngine};
use rap_pipeline::{BenchConfig, PatternSet, Pipeline};
use rap_sim::Simulator;
use std::io::Write;

const HELP: &str = "\
rap compare — run RAP, CAMA, BVAP, CA and the software Shift-And engine
on the same workload

USAGE:
    rap compare <patterns.txt> <input-file> [--depth N] [--bin N]
                [--store-dir D]

FLAGS:
    --depth N       BV depth for NBVA mode   (default 8)
    --bin N         max LNFAs per bin        (default 8)
    --store-dir D   persistent artifact store directory: recall all four
                    machines' verified plans from an earlier run";

/// Runs the subcommand.
pub fn run(argv: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let args = Args::parse(argv)?;
    if args.wants_help() {
        outln!(out, "{HELP}");
        return Ok(());
    }
    let patterns = read_patterns(args.positional(0, "patterns.txt")?)?;
    let input_path = args.positional(1, "input-file")?;
    let input = std::fs::read(input_path)
        .map_err(|e| CliError::Runtime(format!("cannot read {input_path}: {e}")))?;
    let parsed = parse_all(&patterns)?;
    let pats = PatternSet::from_parsed(patterns.clone(), parsed);
    let regexes = pats.regexes();
    let depth = args.flag_num("depth", 8)?;
    let bin = args.flag_num("bin", 8)?;
    let pipe = attach_store(
        Pipeline::new(BenchConfig {
            patterns_per_suite: pats.len(),
            input_len: input.len(),
            match_rate: 0.0,
            seed: 0,
        }),
        &args,
    )?;

    outln!(
        out,
        "{:>10} {:>10} {:>10} {:>12} {:>12} {:>9} {:>8}",
        "machine",
        "energy uJ",
        "area mm2",
        "thpt Gch/s",
        "eff Gch/s/W",
        "power W",
        "matches"
    );
    let mut reference: Option<usize> = None;
    for machine in Machine::all() {
        let sim = Simulator::new(machine)
            .with_bv_depth(depth)
            .with_bin_size(bin);
        let plan = pipe
            .plan(&sim, &pats, None)
            .map_err(|e| CliError::Runtime(e.to_string()))?;
        let r = plan.simulate(&input);
        outln!(
            out,
            "{:>10} {:>10.3} {:>10.4} {:>12.3} {:>12.3} {:>9.3} {:>8}",
            machine.name(),
            r.metrics.energy_uj,
            r.metrics.area_mm2,
            r.metrics.throughput_gchps(),
            r.metrics.energy_efficiency(),
            r.metrics.power_w(),
            r.matches.len()
        );
        match reference {
            None => reference = Some(r.matches.len()),
            Some(n) => {
                if n != r.matches.len() {
                    return Err(CliError::Runtime(format!(
                        "{machine} reported {} matches but the first machine reported {n}",
                        r.matches.len()
                    )));
                }
            }
        }
    }
    // Software engine, measured on this host.
    let engine = ShiftAndEngine::new(&regexes);
    let hits = engine.scan(&input).len();
    let thpt = measure_throughput_gchps(&engine, &input, 2);
    outln!(
        out,
        "{:>10} {:>10} {:>10} {:>12.5} {:>12} {:>9} {:>8}",
        "sw-cpu",
        "-",
        "-",
        thpt,
        "-",
        "-",
        hits
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compares_all_machines() {
        let dir = std::env::temp_dir().join("rap-cli-compare");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let p = dir.join("p.txt");
        std::fs::write(&p, "abc\nq{8,30}r\n").expect("write");
        let i = dir.join("i.bin");
        std::fs::write(&i, b"abc qqqqqqqqqqr abc").expect("write");
        let argv = vec![
            p.to_str().expect("utf8").to_string(),
            i.to_str().expect("utf8").to_string(),
        ];
        let mut out = Vec::new();
        run(&argv, &mut out).expect("compare succeeds");
        let s = String::from_utf8(out).expect("utf8");
        for name in ["RAP", "CAMA", "BVAP", "CA", "sw-cpu"] {
            assert!(s.contains(name), "{s}");
        }
    }

    #[test]
    fn store_dir_persists_every_machine_plan() {
        let dir = std::env::temp_dir().join(format!(
            "rap-cli-compare-store-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let d = dir.to_str().expect("utf8").to_string();
        let work = std::env::temp_dir().join("rap-cli-compare-sd");
        std::fs::create_dir_all(&work).expect("mkdir");
        let p = work.join("p.txt");
        std::fs::write(&p, "abc\nq{8,30}r\n").expect("write");
        let i = work.join("i.bin");
        std::fs::write(&i, b"abc qqqqqqqqqqr abc").expect("write");
        let argv: Vec<String> = vec![
            p.to_str().expect("utf8").to_string(),
            i.to_str().expect("utf8").to_string(),
            "--store-dir".to_string(),
            d,
        ];
        let mut out = Vec::new();
        run(&argv, &mut out).expect("compare succeeds");
        let store = rap_pipeline::DiskStore::open(rap_pipeline::StoreConfig::at(&dir))
            .expect("store opens");
        assert_eq!(store.len(), 4, "one plan per machine");
        drop(store);
        let mut out2 = Vec::new();
        run(&argv, &mut out2).expect("warm compare succeeds");
        // The modeled table is deterministic; only the host-measured
        // sw-cpu row may differ between runs.
        let modeled = |o: &[u8]| {
            String::from_utf8(o.to_vec())
                .expect("utf8")
                .lines()
                .filter(|l| !l.contains("sw-cpu"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(modeled(&out), modeled(&out2));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
