//! `rap compile` — compile a pattern file and report modes and sizing.

use super::{attach_store, outln, parse_all};
use crate::args::Args;
use crate::{read_patterns, CliError};
use rap_circuit::Machine;
use rap_compiler::Mode;
use rap_pipeline::{BenchConfig, PatternSet, Pipeline};
use rap_sim::Simulator;
use std::io::Write;

const HELP: &str = "\
rap compile — compile a pattern file and report modes and hardware sizing

USAGE:
    rap compile <patterns.txt> [--depth N] [--bin N] [--threshold N]

FLAGS:
    --depth N       BV depth for NBVA mode (4/8/16/32, default 8)
    --bin N         max LNFAs per bin (default 8)
    --threshold N   bounded-repetition unfolding threshold (default 4)
    --store-dir D   persistent artifact store directory: recall the verified
                    plan from an earlier run instead of recompiling";

/// Runs the subcommand.
pub fn run(argv: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let args = Args::parse(argv)?;
    if args.wants_help() {
        outln!(out, "{HELP}");
        return Ok(());
    }
    let path = args.positional(0, "patterns.txt")?;
    let patterns = read_patterns(path)?;
    let parsed = parse_all(&patterns)?;

    let mut sim = Simulator::new(Machine::Rap)
        .with_bv_depth(args.flag_num("depth", 8)?)
        .with_bin_size(args.flag_num("bin", 8)?);
    sim.compiler.unfold_threshold = args.flag_num("threshold", 4)?;
    let pats = PatternSet::from_parsed(patterns.clone(), parsed);
    // Build through the pipeline's cached plan path so --store-dir can
    // recall the verified plan across invocations.
    let pipe = attach_store(
        Pipeline::new(BenchConfig {
            patterns_per_suite: pats.len(),
            input_len: 0,
            match_rate: 0.0,
            seed: 0,
        }),
        &args,
    )?;
    let plan = pipe
        .plan(&sim, &pats, None)
        .map_err(|e| CliError::Runtime(e.to_string()))?;
    let compiled = plan.compiled();

    outln!(
        out,
        "{:>4}  {:>5}  {:>7}  {:>7}  pattern",
        "#",
        "mode",
        "states",
        "columns"
    );
    let mut counts = [0usize; 3];
    for (i, (c, p)) in compiled.images().iter().zip(patterns.iter()).enumerate() {
        outln!(
            out,
            "{:>4}  {:>5}  {:>7}  {:>7}  {}",
            i,
            c.mode().to_string(),
            c.state_count(),
            c.column_count(),
            p
        );
        counts[match c.mode() {
            Mode::Nfa => 0,
            Mode::Nbva => 1,
            Mode::Lnfa => 2,
        }] += 1;
    }
    let mapping = plan.mapping();
    let (nfa_arrays, nbva_arrays, lnfa_arrays) = mapping.arrays_by_mode();
    outln!(out, "");
    outln!(
        out,
        "modes: {} NFA, {} NBVA, {} LNFA",
        counts[0],
        counts[1],
        counts[2]
    );
    outln!(
        out,
        "mapping: {} arrays ({} NFA / {} NBVA / {} LNFA), {} tiles, {:.0}% column utilization",
        mapping.arrays.len(),
        nfa_arrays,
        nbva_arrays,
        lnfa_arrays,
        mapping.tiles_used(),
        mapping.utilization() * 100.0
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_patterns(name: &str, body: &str) -> String {
        let dir = std::env::temp_dir().join("rap-cli-compile");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join(name);
        std::fs::write(&path, body).expect("write");
        path.to_str().expect("utf8").to_string()
    }

    fn run_ok(argv: &[&str]) -> String {
        let argv: Vec<String> = argv.iter().map(|s| s.to_string()).collect();
        let mut out = Vec::new();
        run(&argv, &mut out).expect("compile succeeds");
        String::from_utf8(out).expect("utf8")
    }

    #[test]
    fn reports_modes_and_mapping() {
        let path = write_patterns("mix.txt", "abcdef\nx{40}y\na.*b\n");
        let s = run_ok(&[&path]);
        assert!(s.contains("LNFA"), "{s}");
        assert!(s.contains("NBVA"), "{s}");
        assert!(s.contains("modes: 1 NFA, 1 NBVA, 1 LNFA"), "{s}");
        assert!(s.contains("column utilization"), "{s}");
    }

    #[test]
    fn depth_flag_changes_columns() {
        let path = write_patterns("deep.txt", "q{64}r\n");
        let shallow = run_ok(&[&path, "--depth", "4"]);
        let deep = run_ok(&[&path, "--depth", "32"]);
        // Same automaton, fewer BV columns at depth 32.
        assert_ne!(shallow, deep);
    }

    #[test]
    fn store_dir_persists_the_plan() {
        let dir = std::env::temp_dir().join(format!(
            "rap-cli-compile-store-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let d = dir.to_str().expect("utf8");
        let path = write_patterns("stored.txt", "abcdef\nx{40}y\n");
        let first = run_ok(&[&path, "--store-dir", d]);
        let store = rap_pipeline::DiskStore::open(rap_pipeline::StoreConfig::at(&dir))
            .expect("store opens");
        assert_eq!(store.len(), 1, "first run wrote the plan");
        drop(store);
        // Second invocation recalls the plan; the report is identical.
        let second = run_ok(&[&path, "--store-dir", d]);
        assert_eq!(first, second);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn help_flag() {
        let s = run_ok(&["--help"]);
        assert!(s.contains("rap compile"));
    }

    #[test]
    fn bad_pattern_is_runtime_error() {
        let path = write_patterns("bad.txt", "(unclosed\n");
        let argv = vec![path];
        let mut out = Vec::new();
        let err = run(&argv, &mut out).expect_err("bad pattern");
        assert!(matches!(err, CliError::Runtime(_)));
    }
}
