//! `rap analyze` — run the static dataflow analyzer over a suite's
//! compiled images and report diagnostics in the shared rap-diag schema.

use super::{outln, parse_suite};
use crate::args::Args;
use crate::CliError;
use rap_analyze::{analyze, compile_error_diag, AnalyzeOptions, SoundnessConfig};
use rap_compiler::{Compiled, Mode};
use rap_pipeline::PatternSet;
use rap_sim::{SimError, Simulator};
use std::io::Write;

const HELP: &str = "\
rap analyze — statically analyze a suite's compiled automata

Generates one benchmark suite, compiles it for the chosen machine, and
runs the rap-analyze dataflow passes (A001..A011) over every image:
reachability/liveness, dead-transition and BV-column accounting, counter
range checks, the class-overlap ambiguity metric, and a prune dry-run.
Exits non-zero when an Error-severity finding is reported; warnings and
infos do not fail the analysis.

USAGE:
    rap analyze <suite> [FLAGS]

SUITES:
    regexlib spamassassin snort suricata prosite yara clamav

FLAGS:
    --machine M     rap | cama | bvap | ca       (default rap)
    --patterns N    patterns to generate         (default 40)
    --seed S        RNG seed                     (default 42)
    --depth N       BV depth for NBVA mode       (default 8)
    --threshold N   bounded-repetition unfolding threshold (default 4)
    --prune         report against the pruned (reduced) images
    --soundness     prove every image equivalent to the reference NFA by
                    exact product construction (emits A010 on divergence)
    --budget N      soundness: joint configurations explored before the
                    check returns inconclusively (default 8192)
    --json          emit the report as JSON on stdout (the shared rap-diag
                    schema, identical to `rap lint --json`)";

/// Runs the subcommand.
pub fn run(argv: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let args = Args::parse(argv)?;
    if args.wants_help() {
        outln!(out, "{HELP}");
        return Ok(());
    }
    let suite = parse_suite(args.positional(0, "suite")?)?;
    let machine = args.machine()?;
    let count: usize = args.flag_num("patterns", 40)?;
    let seed: u64 = args.flag_num("seed", 42)?;
    let mut sim = Simulator::new(machine).with_bv_depth(args.flag_num("depth", 8)?);
    sim.compiler.unfold_threshold = args.flag_num("threshold", 4)?;

    let sources = rap_workloads::generate_patterns(suite, count, seed);
    let pats = PatternSet::parse(&sources).map_err(|e| CliError::Runtime(e.to_string()))?;

    // Compile pattern-by-pattern so one bad pattern becomes an A009
    // finding instead of aborting the whole analysis.
    let mut images: Vec<Compiled> = Vec::new();
    let mut compiled_patterns = Vec::new();
    let mut failures: Vec<(usize, rap_compiler::CompileError)> = Vec::new();
    for (i, pattern) in pats.parsed().iter().enumerate() {
        match sim.compile_parsed(std::slice::from_ref(pattern)) {
            Ok(mut imgs) => {
                images.append(&mut imgs);
                compiled_patterns.push(pattern.clone());
            }
            Err(SimError::Compile { error, .. }) => failures.push((i, error)),
            Err(other) => return Err(CliError::Runtime(other.to_string())),
        }
    }

    let mut options = AnalyzeOptions::report_only();
    if args.switch("prune") {
        options = options.with_prune();
    }
    if args.switch("soundness") {
        options = options.with_soundness(SoundnessConfig {
            max_configs: args.flag_num("budget", SoundnessConfig::default().max_configs)?,
        });
    }
    let mut analysis = analyze(&images, &compiled_patterns, &options);
    for (i, error) in &failures {
        compile_error_diag(&mut analysis.report, *i, error);
    }

    if args.switch("json") {
        outln!(out, "{}", analysis.report.to_json());
    } else {
        let stats = &analysis.stats;
        let modes = |want: Mode| analysis.summaries.iter().filter(|s| s.mode == want).count();
        outln!(
            out,
            "analyze: {machine} on {} ({} patterns, seed {seed})",
            suite.name(),
            count
        );
        outln!(
            out,
            "compiled: {} image(s) ({} NFA, {} NBVA, {} LNFA), {} state(s), {} failed",
            stats.images,
            modes(Mode::Nfa),
            modes(Mode::Nbva),
            modes(Mode::Lnfa),
            stats.states_before,
            failures.len()
        );
        outln!(
            out,
            "dataflow: {} unreachable, {} dead state(s), {} dead transition(s), \
             {} dead BV bit(s), {} mergeable state(s)",
            stats.unreachable_states,
            stats.dead_states,
            stats.dead_transitions,
            stats.dead_bv_bits,
            stats.mergeable_states
        );
        if options.prune {
            // Per-IR reduction: each summary is index-aligned with the
            // (pruned) output image, so the per-image delta attributes
            // every removed state to its IR.
            let mut by_mode = [(Mode::Nfa, 0u64), (Mode::Nbva, 0u64), (Mode::Lnfa, 0u64)];
            for (summary, image) in analysis.summaries.iter().zip(&analysis.images) {
                let removed = summary.states.saturating_sub(image.state_count());
                for entry in &mut by_mode {
                    if entry.0 == summary.mode {
                        entry.1 += removed;
                    }
                }
            }
            outln!(
                out,
                "prune   : {} -> {} state(s) ({} pruned: {} NFA, {} NBVA, {} LNFA)",
                stats.states_before,
                stats.states_after,
                stats.pruned_states,
                by_mode[0].1,
                by_mode[1].1,
                by_mode[2].1
            );
        }
        if analysis.report.is_empty() {
            outln!(out, "analysis clean: no findings");
        } else {
            out.write_all(analysis.report.to_string().as_bytes())
                .map_err(|e| CliError::Runtime(e.to_string()))?;
        }
        outln!(out, "{} finding(s)", analysis.report.len());
    }
    if !analysis.report.is_legal() {
        return Err(CliError::Runtime(format!(
            "analysis failed: {} error(s)",
            analysis.report.errors().count()
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_ok(argv: &[&str]) -> String {
        let argv: Vec<String> = argv.iter().map(|s| s.to_string()).collect();
        let mut out = Vec::new();
        run(&argv, &mut out).expect("analyze succeeds");
        String::from_utf8(out).expect("utf8")
    }

    #[test]
    fn clean_suite_analyzes_clean() {
        let s = run_ok(&["snort", "--patterns", "12"]);
        assert!(s.contains("analyze: RAP on Snort"), "{s}");
        assert!(
            s.contains("analysis clean: no findings") || s.contains("finding(s)"),
            "{s}"
        );
        assert!(s.contains("dataflow:"), "{s}");
    }

    #[test]
    fn json_output_uses_shared_schema() {
        let s = run_ok(&["regexlib", "--patterns", "8", "--json"]);
        assert!(s.contains("\"legal\": true"), "{s}");
        assert!(s.contains("\"findings\""), "{s}");
    }

    #[test]
    fn all_three_ir_modes_are_analyzed() {
        // RegexLib's generator mixes NFA, NBVA, and LNFA shapes; at this
        // scale the RAP decision graph exercises all three IRs.
        let s = run_ok(&["regexlib", "--patterns", "40"]);
        let line = s
            .lines()
            .find(|l| l.starts_with("compiled:"))
            .expect("compiled line");
        for zero in ["(0 NFA", ", 0 NBVA", ", 0 LNFA"] {
            assert!(!line.contains(zero), "{line}");
        }
    }

    #[test]
    fn prune_reports_reduction_per_ir() {
        let s = run_ok(&["regexlib", "--patterns", "120", "--prune"]);
        let line = s
            .lines()
            .find(|l| l.starts_with("prune   :"))
            .expect("prune line");
        // The aggregate and the per-IR attribution are both present.
        assert!(line.contains("pruned:"), "{line}");
        for ir in ["NFA", "NBVA", "LNFA"] {
            assert!(line.contains(ir), "{line}");
        }
        // The per-IR counts sum to the aggregate.
        let nums: Vec<u64> = line
            .split(|c: char| !c.is_ascii_digit())
            .filter(|t| !t.is_empty())
            .map(|t| t.parse().expect("number"))
            .collect();
        // before, after, pruned, nfa, nbva, lnfa
        assert_eq!(nums.len(), 6, "{line}");
        assert_eq!(nums[2], nums[3] + nums[4] + nums[5], "{line}");
        assert_eq!(nums[0] - nums[1], nums[2], "{line}");
    }

    #[test]
    fn soundness_pass_stays_clean() {
        let s = run_ok(&[
            "prosite",
            "--patterns",
            "4",
            "--soundness",
            "--budget",
            "500",
        ]);
        assert!(!s.contains("A010"), "{s}");
    }

    #[test]
    fn unknown_suite_is_usage_error() {
        let argv = vec!["nosuch".to_string()];
        let mut out = Vec::new();
        assert!(matches!(run(&argv, &mut out), Err(CliError::Usage(_))));
    }

    #[test]
    fn help_prints_flags() {
        let s = run_ok(&["--help"]);
        assert!(s.contains("--prune"), "{s}");
        assert!(s.contains("--soundness"), "{s}");
    }
}
