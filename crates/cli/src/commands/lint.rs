//! `rap lint` — statically verify a workload's mapping plan.

use super::{outln, parse_all};
use crate::args::Args;
use crate::{read_patterns, CliError};
use rap_pipeline::PatternSet;
use rap_sim::Simulator;
use std::io::Write;

const HELP: &str = "\
rap lint — compile + map a pattern file and statically verify the plan

Runs every rap-verify legality rule (V001..V012) against the mapping the
compiler and mapper produce for the pattern file, and prints each finding
with its rule code, severity, and location. Exits non-zero when an error
(hardware-illegal plan) is found; warnings and infos do not fail the lint.

USAGE:
    rap lint <patterns.txt> [--machine rap|cama|bvap|ca] [--depth N]
             [--bin N] [--threshold N] [--json]

FLAGS:
    --machine M     machine model to map for (default rap)
    --depth N       BV depth for NBVA mode (4/8/16/32, default 8)
    --bin N         max LNFAs per bin (default 8)
    --threshold N   bounded-repetition unfolding threshold (default 4)
    --json          emit the report as JSON on stdout (the shared rap-diag
                    schema, identical to `rap analyze --json`: legal flag +
                    findings with rule/severity/array/pattern/state/tile/
                    bin/message)";

/// Runs the subcommand.
pub fn run(argv: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let args = Args::parse(argv)?;
    if args.wants_help() {
        outln!(out, "{HELP}");
        return Ok(());
    }
    let path = args.positional(0, "patterns.txt")?;
    let patterns = read_patterns(path)?;
    let parsed = parse_all(&patterns)?;

    let mut sim = Simulator::new(args.machine()?)
        .with_bv_depth(args.flag_num("depth", 8)?)
        .with_bin_size(args.flag_num("bin", 8)?);
    sim.compiler.unfold_threshold = args.flag_num("threshold", 4)?;
    let pats = PatternSet::from_parsed(patterns.clone(), parsed);
    let plan = pats
        .compile(&sim, None)
        .map_err(|e| CliError::Runtime(e.to_string()))?
        .map(&sim);
    let report = plan.lint();

    if args.switch("json") {
        outln!(out, "{}", report.to_json());
    } else {
        if report.is_empty() {
            outln!(out, "mapping verified clean");
        } else {
            out.write_all(report.to_string().as_bytes())
                .map_err(|e| CliError::Runtime(e.to_string()))?;
        }
        outln!(
            out,
            "{} pattern(s), {} array(s), {} finding(s)",
            patterns.len(),
            plan.mapping().arrays.len(),
            report.len()
        );
    }
    if !report.is_legal() {
        return Err(CliError::Runtime(format!(
            "mapping is illegal: {} error(s)",
            report.errors().count()
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_patterns(name: &str, body: &str) -> String {
        let dir = std::env::temp_dir().join("rap-cli-lint");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join(name);
        std::fs::write(&path, body).expect("write");
        path.to_str().expect("utf8").to_string()
    }

    fn run_ok(argv: &[&str]) -> String {
        let argv: Vec<String> = argv.iter().map(|s| s.to_string()).collect();
        let mut out = Vec::new();
        run(&argv, &mut out).expect("lint succeeds");
        String::from_utf8(out).expect("utf8")
    }

    #[test]
    fn clean_workload_lints_clean() {
        let path = write_patterns("mix.txt", "abcdef\nx{40}y\na.*b\n");
        let s = run_ok(&[&path]);
        assert!(s.contains("mapping verified clean"), "{s}");
        assert!(s.contains("0 finding(s)"), "{s}");
    }

    #[test]
    fn json_output_is_well_formed() {
        let path = write_patterns("j.txt", "abc\n");
        let s = run_ok(&[&path, "--json"]);
        assert!(s.contains("\"legal\": true"), "{s}");
        assert!(s.contains("\"findings\": []"), "{s}");
    }

    #[test]
    fn unswept_depth_warns_but_passes() {
        let path = write_patterns("warn.txt", "x{100}y\n");
        let s = run_ok(&[&path, "--depth", "10"]);
        assert!(s.contains("V001-bv-depth"), "{s}");
        assert!(s.contains("warning"), "{s}");
        let j = run_ok(&[&path, "--depth", "10", "--json"]);
        assert!(j.contains("\"legal\": true"), "{j}");
        assert!(j.contains("\"rule\": \"V001-bv-depth\""), "{j}");
        assert!(j.contains("\"state\": null"), "{j}");
    }

    #[test]
    fn help_flag() {
        let s = run_ok(&["--help"]);
        assert!(s.contains("rap lint"));
    }
}
