//! `rap lint` — statically verify a workload's mapping plan.

use super::{outln, parse_all};
use crate::args::Args;
use crate::{read_patterns, CliError};
use rap_pipeline::PatternSet;
use rap_sim::Simulator;
use rap_verify::{Report, Severity};
use std::io::Write;

const HELP: &str = "\
rap lint — compile + map a pattern file and statically verify the plan

Runs every rap-verify legality rule (V001..V012) against the mapping the
compiler and mapper produce for the pattern file, and prints each finding
with its rule code, severity, and location. Exits non-zero when an error
(hardware-illegal plan) is found; warnings and infos do not fail the lint.

USAGE:
    rap lint <patterns.txt> [--machine rap|cama|bvap|ca] [--depth N]
             [--bin N] [--threshold N] [--json]

FLAGS:
    --machine M     machine model to map for (default rap)
    --depth N       BV depth for NBVA mode (4/8/16/32, default 8)
    --bin N         max LNFAs per bin (default 8)
    --threshold N   bounded-repetition unfolding threshold (default 4)
    --json          emit the report as JSON on stdout";

/// Runs the subcommand.
pub fn run(argv: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let args = Args::parse(argv)?;
    if args.wants_help() {
        outln!(out, "{HELP}");
        return Ok(());
    }
    let path = args.positional(0, "patterns.txt")?;
    let patterns = read_patterns(path)?;
    let parsed = parse_all(&patterns)?;

    let mut sim = Simulator::new(args.machine()?)
        .with_bv_depth(args.flag_num("depth", 8)?)
        .with_bin_size(args.flag_num("bin", 8)?);
    sim.compiler.unfold_threshold = args.flag_num("threshold", 4)?;
    let pats = PatternSet::from_parsed(patterns.clone(), parsed);
    let plan = pats
        .compile(&sim, None)
        .map_err(|e| CliError::Runtime(e.to_string()))?
        .map(&sim);
    let report = plan.lint();

    if args.switch("json") {
        outln!(out, "{}", report_json(&report));
    } else {
        out.write_all(report.to_string().as_bytes())
            .map_err(|e| CliError::Runtime(e.to_string()))?;
        outln!(
            out,
            "{} pattern(s), {} array(s), {} finding(s)",
            patterns.len(),
            plan.mapping().arrays.len(),
            report.len()
        );
    }
    if !report.is_legal() {
        return Err(CliError::Runtime(format!(
            "mapping is illegal: {} error(s)",
            report.errors().count()
        )));
    }
    Ok(())
}

/// Renders a report as a JSON object (hand-rolled; the workspace carries no
/// JSON dependency).
fn report_json(report: &Report) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"legal\": {},\n", report.is_legal()));
    s.push_str("  \"findings\": [");
    for (i, d) in report.diagnostics.iter().enumerate() {
        s.push_str(if i == 0 { "\n" } else { ",\n" });
        s.push_str(&format!(
            "    {{\"rule\": \"{}\", \"severity\": \"{}\", \"array\": {}, \
             \"pattern\": {}, \"tile\": {}, \"bin\": {}, \"message\": \"{}\"}}",
            d.rule,
            match d.severity {
                Severity::Info => "info",
                Severity::Warning => "warning",
                Severity::Error => "error",
            },
            json_opt(d.location.array.map(|v| v as u64)),
            json_opt(d.location.pattern.map(|v| v as u64)),
            json_opt(d.location.tile.map(u64::from)),
            json_opt(d.location.bin.map(|v| v as u64)),
            json_escape(&d.message),
        ));
    }
    if !report.diagnostics.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("]\n}");
    s
}

fn json_opt(v: Option<u64>) -> String {
    v.map_or_else(|| "null".to_string(), |v| v.to_string())
}

fn json_escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_patterns(name: &str, body: &str) -> String {
        let dir = std::env::temp_dir().join("rap-cli-lint");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join(name);
        std::fs::write(&path, body).expect("write");
        path.to_str().expect("utf8").to_string()
    }

    fn run_ok(argv: &[&str]) -> String {
        let argv: Vec<String> = argv.iter().map(|s| s.to_string()).collect();
        let mut out = Vec::new();
        run(&argv, &mut out).expect("lint succeeds");
        String::from_utf8(out).expect("utf8")
    }

    #[test]
    fn clean_workload_lints_clean() {
        let path = write_patterns("mix.txt", "abcdef\nx{40}y\na.*b\n");
        let s = run_ok(&[&path]);
        assert!(s.contains("mapping verified clean"), "{s}");
        assert!(s.contains("0 finding(s)"), "{s}");
    }

    #[test]
    fn json_output_is_well_formed() {
        let path = write_patterns("j.txt", "abc\n");
        let s = run_ok(&[&path, "--json"]);
        assert!(s.contains("\"legal\": true"), "{s}");
        assert!(s.contains("\"findings\": []"), "{s}");
    }

    #[test]
    fn unswept_depth_warns_but_passes() {
        let path = write_patterns("warn.txt", "x{100}y\n");
        let s = run_ok(&[&path, "--depth", "10"]);
        assert!(s.contains("V001-bv-depth"), "{s}");
        assert!(s.contains("warning"), "{s}");
        let j = run_ok(&[&path, "--depth", "10", "--json"]);
        assert!(j.contains("\"legal\": true"), "{j}");
        assert!(j.contains("\"rule\": \"V001-bv-depth\""), "{j}");
    }

    #[test]
    fn help_flag() {
        let s = run_ok(&["--help"]);
        assert!(s.contains("rap lint"));
    }

    #[test]
    fn escaping_handles_quotes_and_control() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
