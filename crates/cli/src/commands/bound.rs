//! `rap bound` — static worst-case capacity/cost bounds for one suite's
//! mapped plan, through the pipeline's Bound stage.

use super::{attach_store, outln, parse_suite};
use crate::args::Args;
use crate::CliError;
use rap_analyze::SoundnessConfig;
use rap_bound::{BoundAnalysis, BoundOptions};
use rap_pipeline::{BenchConfig, Pipeline};
use std::io::Write;

const HELP: &str = "\
rap bound — statically bound a suite's worst-case resource behaviour

Generates one benchmark suite, builds the verified plan for the chosen
machine, and runs the rap-bound abstract interpreter over it: certified
per-array peak active-state bounds, bank-buffer occupancy bounds, counter
value intervals, per-tile fan-in congestion, and replication pressure
(B001..B008). The simulator can never exceed these numbers on any input.
Exits non-zero when an Error-severity finding is reported.

USAGE:
    rap bound <suite> [FLAGS]

SUITES:
    regexlib spamassassin snort suricata prosite yara clamav

FLAGS:
    --machine M     rap | cama | bvap | ca       (default rap)
    --patterns N    patterns to generate         (default 40)
    --seed S        RNG seed                     (default 42)
    --equivalence   also prove every image equivalent to its reference
                    NFA by exact product construction (B008 on divergence)
    --budget N      equivalence: joint configurations explored before the
                    check returns inconclusively (default 8192)
    --store-dir D   persistent artifact store directory: recall the plan
                    from an earlier run instead of recompiling
    --json          emit bounds and findings as JSON on stdout";

/// Runs the subcommand.
pub fn run(argv: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let args = Args::parse(argv)?;
    if args.wants_help() {
        outln!(out, "{HELP}");
        return Ok(());
    }
    let suite = parse_suite(args.positional(0, "suite")?)?;
    let machine = args.machine()?;
    let spec = BenchConfig {
        patterns_per_suite: args.flag_num("patterns", 40)?,
        input_len: 256, // bounds are input-independent; keep the corpus tiny
        match_rate: 0.02,
        seed: args.flag_num("seed", 42)?,
    };
    let mut options = BoundOptions::bounds_only();
    if args.switch("equivalence") {
        options = options.with_equivalence(SoundnessConfig {
            max_configs: args.flag_num("budget", SoundnessConfig::default().max_configs)?,
        });
    }

    let pipe = attach_store(Pipeline::new(spec).with_bounds(options), &args)?;
    let corpus = pipe.corpus(suite);
    let sim = pipe.simulator_for(machine, suite);
    let plan = pipe
        .plan(&sim, corpus.patterns(), None)
        .map_err(|e| CliError::Runtime(e.to_string()))?;
    let bounds = plan.bounds().expect("bound stage is enabled");

    if args.switch("json") {
        outln!(out, "{}", to_json(bounds));
    } else {
        outln!(
            out,
            "bound: {machine} on {} ({} patterns, seed {})",
            suite.name(),
            spec.patterns_per_suite,
            spec.seed
        );
        outln!(
            out,
            "arrays  : {} array(s), worst-case {} of {} placed state(s) active",
            bounds.arrays.len(),
            bounds.total_peak_active(),
            bounds.arrays.iter().map(|a| a.placed_states).sum::<u64>()
        );
        outln!(
            out,
            "bank    : {} lane(s), <= {} input FIFO byte(s), <= {} output record(s), \
             <= {} byte(s) skew",
            bounds.bank.lanes,
            bounds.bank.input_fifo_bytes,
            bounds.bank.output_fifo_records,
            bounds.bank.max_skew
        );
        let dead = bounds.counters.iter().filter(|c| !c.read_feasible).count();
        outln!(
            out,
            "counters: {} bit-vector counter(s), {} dead read(s)",
            bounds.counters.len(),
            dead
        );
        match bounds.replication.max_match_span {
            Some(span) => outln!(out, "span    : max match span {span} byte(s)"),
            None => outln!(out, "span    : unbounded (shard replication impossible)"),
        }
        if bounds.report.is_empty() {
            outln!(out, "no findings");
        } else {
            out.write_all(bounds.report.to_string().as_bytes())
                .map_err(|e| CliError::Runtime(e.to_string()))?;
        }
        outln!(out, "{} finding(s)", bounds.report.len());
    }
    if !bounds.report.is_legal() {
        return Err(CliError::Runtime(format!(
            "bound analysis failed: {} error(s)",
            bounds.report.errors().count()
        )));
    }
    Ok(())
}

/// Renders the analysis as one JSON object: the numeric bounds plus the
/// findings in the shared rap-diag schema.
fn to_json(bounds: &BoundAnalysis) -> String {
    let mut s = String::from("{\"arrays\": [");
    for (i, a) in bounds.arrays.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(&format!(
            "{{\"array\": {}, \"mode\": \"{}\", \"placed_states\": {}, \
             \"peak_active_states\": {}, \"reporters\": {}, \"peak_fanin\": {}}}",
            a.array, a.mode, a.placed_states, a.peak_active_states, a.reporters, a.peak_fanin
        ));
    }
    s.push_str(&format!(
        "], \"bank\": {{\"lanes\": {}, \"input_fifo_bytes\": {}, \
         \"output_fifo_records\": {}, \"max_skew\": {}}}",
        bounds.bank.lanes,
        bounds.bank.input_fifo_bytes,
        bounds.bank.output_fifo_records,
        bounds.bank.max_skew
    ));
    s.push_str(&format!(
        ", \"counters\": {}, \"max_match_span\": {}",
        bounds.counters.len(),
        bounds
            .replication
            .max_match_span
            .map_or("null".to_string(), |v| v.to_string())
    ));
    s.push_str(&format!(", \"report\": {}}}", bounds.report.to_json()));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_ok(argv: &[&str]) -> String {
        let argv: Vec<String> = argv.iter().map(|s| s.to_string()).collect();
        let mut out = Vec::new();
        run(&argv, &mut out).expect("bound succeeds");
        String::from_utf8(out).expect("utf8")
    }

    #[test]
    fn bounds_every_suite_surface() {
        let s = run_ok(&["snort", "--patterns", "8"]);
        assert!(s.contains("bound: RAP on Snort"), "{s}");
        assert!(s.contains("arrays  :"), "{s}");
        assert!(s.contains("bank    :"), "{s}");
        assert!(s.contains("finding(s)"), "{s}");
    }

    #[test]
    fn json_carries_bounds_and_findings() {
        let s = run_ok(&["regexlib", "--patterns", "8", "--json"]);
        assert!(s.contains("\"peak_active_states\""), "{s}");
        assert!(s.contains("\"max_skew\""), "{s}");
        assert!(s.contains("\"legal\": true"), "{s}");
        assert!(s.contains("B001-active-bound"), "{s}");
    }

    #[test]
    fn equivalence_switch_stays_clean() {
        let s = run_ok(&[
            "prosite",
            "--patterns",
            "4",
            "--equivalence",
            "--budget",
            "500",
        ]);
        assert!(!s.contains("B008"), "{s}");
    }

    #[test]
    fn store_dir_persists_the_plan_across_invocations() {
        let dir = std::env::temp_dir().join(format!(
            "rap-cli-bound-store-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let d = dir.to_str().expect("utf8");
        run_ok(&["snort", "--patterns", "4", "--store-dir", d]);
        let store = rap_pipeline::DiskStore::open(rap_pipeline::StoreConfig::at(&dir))
            .expect("store opens");
        assert_eq!(store.len(), 1, "first run wrote the plan");
        drop(store);
        // Second invocation (fresh pipeline) loads rather than rebuilds.
        let s = run_ok(&["snort", "--patterns", "4", "--store-dir", d]);
        assert!(s.contains("bound: RAP on Snort"), "{s}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_suite_is_usage_error() {
        let argv = vec!["nosuch".to_string()];
        let mut out = Vec::new();
        assert!(matches!(run(&argv, &mut out), Err(CliError::Usage(_))));
    }

    #[test]
    fn help_prints_flags() {
        let s = run_ok(&["--help"]);
        assert!(s.contains("--equivalence"), "{s}");
        assert!(s.contains("--json"), "{s}");
    }
}
