//! `rap gen` / `rap gen-input` — synthesize benchmark workloads.

use super::{outln, parse_suite};
use crate::args::Args;
use crate::{read_patterns, CliError};
use std::io::Write;

const HELP_GEN: &str = "\
rap gen — generate a synthetic benchmark suite's patterns (one per line)

USAGE:
    rap gen <suite> <count> [--seed S]

SUITES:
    regexlib spamassassin snort suricata prosite yara clamav";

const HELP_INPUT: &str = "\
rap gen-input — generate a synthetic input stream for a pattern file

USAGE:
    rap gen-input <patterns.txt> <length> [--rate R] [--seed S] [--out FILE]

FLAGS:
    --rate R    fraction of bytes belonging to planted matches (default 0.02)
    --seed S    RNG seed (default 42)
    --out FILE  write bytes to FILE instead of stdout";

/// Runs `rap gen`.
pub fn run(argv: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let args = Args::parse(argv)?;
    if args.wants_help() {
        outln!(out, "{HELP_GEN}");
        return Ok(());
    }
    let suite = parse_suite(args.positional(0, "suite")?)?;
    let count: usize = args
        .positional(1, "count")?
        .parse()
        .map_err(|_| CliError::Usage("count must be a number".to_string()))?;
    let seed: u64 = args.flag_num("seed", 42)?;
    for p in rap_workloads::generate_patterns(suite, count, seed) {
        outln!(out, "{p}");
    }
    Ok(())
}

/// Runs `rap gen-input`.
pub fn run_input(argv: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let args = Args::parse(argv)?;
    if args.wants_help() {
        outln!(out, "{HELP_INPUT}");
        return Ok(());
    }
    let patterns = read_patterns(args.positional(0, "patterns.txt")?)?;
    let length: usize = args
        .positional(1, "length")?
        .parse()
        .map_err(|_| CliError::Usage("length must be a number".to_string()))?;
    let rate: f64 = args.flag_num("rate", 0.02)?;
    if !(0.0..=1.0).contains(&rate) {
        return Err(CliError::Usage("--rate must be in [0, 1]".to_string()));
    }
    let seed: u64 = args.flag_num("seed", 42)?;
    let stream = rap_workloads::generate_input(&patterns, length, rate, seed);
    match args.flag("out") {
        Some(path) => std::fs::write(path, &stream)
            .map_err(|e| CliError::Runtime(format!("cannot write {path}: {e}")))?,
        None => out
            .write_all(&stream)
            .map_err(|e| CliError::Runtime(e.to_string()))?,
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_ok(f: fn(&[String], &mut dyn Write) -> Result<(), CliError>, argv: &[&str]) -> Vec<u8> {
        let argv: Vec<String> = argv.iter().map(|s| s.to_string()).collect();
        let mut out = Vec::new();
        f(&argv, &mut out).expect("command succeeds");
        out
    }

    #[test]
    fn gen_produces_parsable_patterns() {
        let out = run_ok(run, &["snort", "15", "--seed", "9"]);
        let text = String::from_utf8(out).expect("utf8");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 15);
        for l in lines {
            rap_regex::parse(l).unwrap_or_else(|e| panic!("{l}: {e}"));
        }
    }

    #[test]
    fn gen_suite_names_case_insensitive() {
        let a = run_ok(run, &["ClamAV", "3"]);
        let b = run_ok(run, &["clamav", "3"]);
        assert_eq!(a, b);
    }

    #[test]
    fn gen_unknown_suite_is_usage() {
        let argv = vec!["anmldoo".to_string(), "3".to_string()];
        let mut out = Vec::new();
        assert!(matches!(run(&argv, &mut out), Err(CliError::Usage(_))));
    }

    #[test]
    fn gen_input_exact_length() {
        let dir = std::env::temp_dir().join("rap-cli-gen");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let p = dir.join("p.txt");
        std::fs::write(&p, "abc\n").expect("write");
        let out = run_ok(run_input, &[p.to_str().expect("utf8"), "512"]);
        assert_eq!(out.len(), 512);
    }

    #[test]
    fn gen_input_out_flag_writes_file() {
        let dir = std::env::temp_dir().join("rap-cli-gen-out");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let p = dir.join("p.txt");
        std::fs::write(&p, "abc\n").expect("write");
        let target = dir.join("stream.bin");
        let _ = run_ok(
            run_input,
            &[
                p.to_str().expect("utf8"),
                "100",
                "--out",
                target.to_str().expect("utf8"),
            ],
        );
        assert_eq!(std::fs::read(&target).expect("read back").len(), 100);
    }

    #[test]
    fn gen_input_bad_rate_is_usage() {
        let dir = std::env::temp_dir().join("rap-cli-gen-rate");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let p = dir.join("p.txt");
        std::fs::write(&p, "abc\n").expect("write");
        let argv = vec![
            p.to_str().expect("utf8").to_string(),
            "10".to_string(),
            "--rate".to_string(),
            "1.5".to_string(),
        ];
        let mut out = Vec::new();
        assert!(matches!(
            run_input(&argv, &mut out),
            Err(CliError::Usage(_))
        ));
    }
}
