//! The CLI subcommands.

pub mod analyze;
pub mod bound;
pub mod compare;
pub mod compile;
pub mod dot;
pub mod gen;
pub mod layout;
pub mod lint;
pub mod scan;
pub mod trace;

use crate::CliError;
use rap_regex::Pattern;
use rap_workloads::Suite;

/// Parses a suite name case-insensitively.
pub(crate) fn parse_suite(name: &str) -> Result<Suite, CliError> {
    Suite::all()
        .into_iter()
        .find(|s| s.name().eq_ignore_ascii_case(name))
        .ok_or_else(|| {
            CliError::Usage(format!(
                "unknown suite {name:?} (expected one of: {})",
                Suite::all().map(|s| s.name().to_lowercase()).join(" ")
            ))
        })
}

/// Parses pattern strings (anchors allowed), mapping failures to numbered
/// runtime errors.
pub(crate) fn parse_all(patterns: &[String]) -> Result<Vec<Pattern>, CliError> {
    patterns
        .iter()
        .enumerate()
        .map(|(i, p)| {
            rap_regex::parse_pattern(p)
                .map_err(|e| CliError::Runtime(format!("pattern #{i} {p:?}: {e}")))
        })
        .collect()
}

/// Writes a line, converting I/O failure into a runtime error.
macro_rules! outln {
    ($out:expr, $($arg:tt)*) => {
        writeln!($out, $($arg)*).map_err(|e| crate::CliError::Runtime(e.to_string()))?
    };
}
pub(crate) use outln;
