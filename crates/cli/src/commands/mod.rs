//! The CLI subcommands.

pub mod admit;
pub mod analyze;
pub mod bound;
pub mod cache;
pub mod compare;
pub mod compile;
pub mod dot;
pub mod gen;
pub mod layout;
pub mod lint;
pub mod scan;
pub mod serve;
pub mod swap;
pub mod trace;

use crate::CliError;
use rap_regex::Pattern;
use rap_workloads::Suite;

/// Parses a suite name case-insensitively.
pub(crate) fn parse_suite(name: &str) -> Result<Suite, CliError> {
    Suite::all()
        .into_iter()
        .find(|s| s.name().eq_ignore_ascii_case(name))
        .ok_or_else(|| {
            CliError::Usage(format!(
                "unknown suite {name:?} (expected one of: {})",
                Suite::all().map(|s| s.name().to_lowercase()).join(" ")
            ))
        })
}

/// Parses pattern strings (anchors allowed), mapping failures to numbered
/// runtime errors.
pub(crate) fn parse_all(patterns: &[String]) -> Result<Vec<Pattern>, CliError> {
    patterns
        .iter()
        .enumerate()
        .map(|(i, p)| {
            rap_regex::parse_pattern(p)
                .map_err(|e| CliError::Runtime(format!("pattern #{i} {p:?}: {e}")))
        })
        .collect()
}

/// Attaches the persistent artifact store named by `--store-dir` (when
/// given) to a pipeline, so repeated CLI invocations over the same
/// directory recall plans instead of recompiling.
pub(crate) fn attach_store(
    pipe: rap_pipeline::Pipeline,
    args: &crate::args::Args,
) -> Result<rap_pipeline::Pipeline, CliError> {
    match args.flag("store-dir") {
        None => Ok(pipe),
        Some(dir) => pipe
            .with_store(rap_pipeline::StoreConfig::at(dir))
            .map_err(|e| CliError::Runtime(format!("open artifact store at {dir}: {e}"))),
    }
}

/// Writes a line, converting I/O failure into a runtime error.
macro_rules! outln {
    ($out:expr, $($arg:tt)*) => {
        writeln!($out, $($arg)*).map_err(|e| crate::CliError::Runtime(e.to_string()))?
    };
}
pub(crate) use outln;
