//! Command-line front-end for the RAP reproduction.
//!
//! The `rap` binary wraps the full stack behind five subcommands:
//!
//! ```text
//! rap compile <patterns.txt> [--depth N] [--bin N] [--threshold N]
//! rap scan    <patterns.txt> <input-file> [--machine rap|cama|bvap|ca] [--limit N]
//! rap gen     <suite> <count> [--seed S]
//! rap gen-input <patterns.txt> <length> [--rate R] [--seed S] [--out FILE]
//! rap compare <patterns.txt> <input-file>
//! rap lint    <patterns.txt> [--machine rap|cama|bvap|ca] [--json]
//! rap analyze <suite> [--machine M] [--patterns N] [--prune] [--json]
//! rap bound   <suite> [--machine M] [--patterns N] [--equivalence] [--json]
//! rap admit   <suite> [<suite>...] [--machine M] [--banks N] [--overlap] [--json]
//! rap swap    <suite> [<suite>...] --out <suite> --in <suite> [--json]
//! rap serve   <suite> [<suite>...] [--shards N] [--queue-pages N] [--listen ADDR] [--json]
//! rap trace   <suite> [--machine M] [--sample N] [--top N] [--out FILE] [--json]
//! rap cache   stats|gc|clear [--store-dir DIR] [--max-bytes N] [--json]
//! ```
//!
//! Pattern files contain one PCRE-style pattern per line; blank lines and
//! lines starting with `#` are ignored. All output is plain text designed
//! to be grep-/awk-friendly.

pub mod args;
pub mod commands;

use std::fmt;

/// A CLI failure, printed to stderr with exit code 1 (usage errors) or 2
/// (runtime errors).
#[derive(Debug)]
pub enum CliError {
    /// Bad invocation: unknown command, missing argument, unparsable flag.
    Usage(String),
    /// Something failed while running: I/O, compile error, bad pattern.
    Runtime(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(m) => write!(f, "usage error: {m}"),
            CliError::Runtime(m) => write!(f, "error: {m}"),
        }
    }
}

impl std::error::Error for CliError {}

impl CliError {
    /// Process exit code for this error class.
    pub fn exit_code(&self) -> i32 {
        match self {
            CliError::Usage(_) => 1,
            CliError::Runtime(_) => 2,
        }
    }
}

/// Top-level usage text.
pub const USAGE: &str = "\
rap — Reconfigurable Automata Processor (reproduction) CLI

USAGE:
    rap <COMMAND> [ARGS]

COMMANDS:
    compile    Compile a pattern file and report modes and hardware sizing
    scan       Scan an input file and report matches and modeled metrics
    gen        Generate a synthetic benchmark suite's patterns
    gen-input  Generate a synthetic input stream for a pattern file
    compare    Run all four machines plus the software engines on a workload
    dot        Print a pattern's Glushkov automaton in Graphviz DOT
    layout     Show per-array tile occupancy after mapping
    lint       Statically verify the mapping plan for a pattern file
    analyze    Run the dataflow static analyzer over a suite's automata
    bound      Compute certified worst-case bounds for a suite's mapped plan
    admit      Decide whether suites can share one fabric without interference
    swap       Certify a live tenant hot-swap on an admitted composition
    serve      Run the multi-tenant streaming scan service over suite tenants
    trace      Profile one suite with cycle-level telemetry attached
    cache      Inspect or manage the persistent artifact store
    help       Show this message

Run `rap <COMMAND> --help` for command-specific flags.";

/// Entry point shared by the binary and the tests: parses `argv` (without
/// the program name) and runs the chosen command, writing to `out`.
///
/// # Errors
///
/// Returns [`CliError`] on bad usage or runtime failure.
pub fn run(argv: &[String], out: &mut dyn std::io::Write) -> Result<(), CliError> {
    let Some(command) = argv.first() else {
        return Err(CliError::Usage(format!("no command given\n\n{USAGE}")));
    };
    let rest = &argv[1..];
    match command.as_str() {
        "compile" => commands::compile::run(rest, out),
        "scan" => commands::scan::run(rest, out),
        "gen" => commands::gen::run(rest, out),
        "gen-input" => commands::gen::run_input(rest, out),
        "compare" => commands::compare::run(rest, out),
        "dot" => commands::dot::run(rest, out),
        "layout" => commands::layout::run(rest, out),
        "lint" => commands::lint::run(rest, out),
        "admit" => commands::admit::run(rest, out),
        "swap" => commands::swap::run(rest, out),
        "serve" => commands::serve::run(rest, out),
        "analyze" => commands::analyze::run(rest, out),
        "bound" => commands::bound::run(rest, out),
        "trace" => commands::trace::run(rest, out),
        "cache" => commands::cache::run(rest, out),
        "help" | "--help" | "-h" => {
            writeln!(out, "{USAGE}").map_err(|e| CliError::Runtime(e.to_string()))
        }
        other => Err(CliError::Usage(format!(
            "unknown command {other:?}\n\n{USAGE}"
        ))),
    }
}

/// Reads a pattern file: one pattern per line, `#` comments and blank
/// lines skipped.
///
/// # Errors
///
/// Returns [`CliError::Runtime`] on I/O failure or when no patterns remain.
pub fn read_patterns(path: &str) -> Result<Vec<String>, CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::Runtime(format!("cannot read {path}: {e}")))?;
    let patterns: Vec<String> = text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(str::to_string)
        .collect();
    if patterns.is_empty() {
        return Err(CliError::Runtime(format!("{path} contains no patterns")));
    }
    Ok(patterns)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_to_string(argv: &[&str]) -> Result<String, CliError> {
        let argv: Vec<String> = argv.iter().map(|s| s.to_string()).collect();
        let mut out = Vec::new();
        run(&argv, &mut out)?;
        Ok(String::from_utf8(out).expect("CLI output is UTF-8"))
    }

    #[test]
    fn help_prints_usage() {
        let s = run_to_string(&["help"]).expect("help succeeds");
        assert!(s.contains("USAGE"));
        assert!(s.contains("compile"));
    }

    #[test]
    fn unknown_command_is_usage_error() {
        let err = run_to_string(&["frobnicate"]).expect_err("unknown command");
        assert!(matches!(err, CliError::Usage(_)));
        assert_eq!(err.exit_code(), 1);
    }

    #[test]
    fn no_command_is_usage_error() {
        let err = run_to_string(&[]).expect_err("no command");
        assert!(matches!(err, CliError::Usage(_)));
    }

    #[test]
    fn read_patterns_skips_comments() {
        let dir = std::env::temp_dir().join("rap-cli-test-read");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("p.txt");
        std::fs::write(&path, "# comment\nabc\n\n  def  \n").expect("write");
        let p = read_patterns(path.to_str().expect("utf8 path")).expect("reads");
        assert_eq!(p, vec!["abc".to_string(), "def".to_string()]);
    }

    #[test]
    fn read_patterns_rejects_empty() {
        let dir = std::env::temp_dir().join("rap-cli-test-empty");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("empty.txt");
        std::fs::write(&path, "# only a comment\n").expect("write");
        let err = read_patterns(path.to_str().expect("utf8 path")).expect_err("empty");
        assert!(matches!(err, CliError::Runtime(_)));
        assert_eq!(err.exit_code(), 2);
    }
}
