//! Cross-validates the rap-bound static analyzer against the simulator:
//! on every benchmark suite, the probe-observed peaks (active states per
//! array, bank-buffer occupancy, page skew) must never exceed the
//! certified static bounds. The bounds are computed without ever running
//! the automata, so any violation here is a soundness bug in rap-bound.

use rap::bound::{analyze_bounds, BoundAnalysis, BoundOptions};
use rap::telemetry::{Telemetry, TelemetryConfig};
use rap::workloads::{generate_input, generate_patterns, Suite};
use rap::{Machine, Simulator};
use std::sync::Arc;

const PATTERNS: usize = 24;
const INPUT_LEN: usize = 4_000;
const SEED: u64 = 7;

/// Builds the suite's plan, computes its static bounds, and runs one
/// densely-sampled traced streaming simulation, returning the bounds and
/// the observing telemetry context.
fn bound_and_run(suite: Suite, machine: Machine) -> (BoundAnalysis, Arc<Telemetry>) {
    let telemetry = Arc::new(Telemetry::new(TelemetryConfig {
        sample_every: 1,
        ring_capacity: 1 << 20,
    }));
    let sim = Simulator::new(machine)
        .with_bv_depth(suite.chosen_bv_depth())
        .with_bin_size(suite.chosen_bin_size())
        .with_telemetry(Arc::clone(&telemetry));
    let sources = generate_patterns(suite, PATTERNS, SEED);
    let patterns: Vec<_> = sources
        .iter()
        .map(|s| rap::regex::parse_pattern(s).expect("suite patterns parse"))
        .collect();
    let images = sim.compile_parsed(&patterns).expect("suite compiles");
    let mapping = sim.map_verified(&images).expect("suite maps legally");
    let bounds = analyze_bounds(&images, &patterns, &mapping, &BoundOptions::bounds_only());

    let input = generate_input(&sources, INPUT_LEN, 0.05, SEED);
    let (_result, _stats) = sim.simulate_streaming(&images, &mapping, &input);
    (bounds, telemetry)
}

#[test]
fn observed_peaks_never_exceed_static_bounds() {
    for suite in Suite::all() {
        for machine in [Machine::Rap, Machine::Ca] {
            let (bounds, telemetry) = bound_and_run(suite, machine);
            let traces = telemetry.drain_traces();
            assert!(!traces.is_empty(), "{suite:?}/{machine:?}: no trace");
            for trace in &traces {
                for (array, observed) in trace.peak_active_states() {
                    let bound = bounds
                        .arrays
                        .iter()
                        .find(|a| a.array == array as usize)
                        .unwrap_or_else(|| {
                            panic!("{suite:?}/{machine:?}: no bound for array {array}")
                        });
                    assert!(
                        observed <= bound.peak_active_states,
                        "{suite:?}/{machine:?} array {array}: observed {observed} active \
                         states > static bound {}",
                        bound.peak_active_states
                    );
                }
                assert!(
                    trace.peak_input_fifo_bytes() <= bounds.bank.input_fifo_bytes,
                    "{suite:?}/{machine:?}: input FIFO {} > bound {}",
                    trace.peak_input_fifo_bytes(),
                    bounds.bank.input_fifo_bytes
                );
                assert!(
                    trace.peak_output_fifo_records() <= bounds.bank.output_fifo_records,
                    "{suite:?}/{machine:?}: output records {} > bound {}",
                    trace.peak_output_fifo_records(),
                    bounds.bank.output_fifo_records
                );
                assert!(
                    trace.peak_skew() <= bounds.bank.max_skew,
                    "{suite:?}/{machine:?}: skew {} > bound {}",
                    trace.peak_skew(),
                    bounds.bank.max_skew
                );
            }
        }
    }
}

#[test]
fn bounds_stay_clean_on_every_suite() {
    // No suite should trip an Error-severity bound finding (dead counter
    // reads or failed equivalence) — the compiler's output is supposed to
    // be well-formed for every generated workload.
    for suite in Suite::all() {
        let (bounds, _telemetry) = bound_and_run(suite, Machine::Rap);
        assert!(
            bounds.report.is_legal(),
            "{suite:?}: error-severity bound findings:\n{}",
            bounds.report
        );
        assert!(!bounds.arrays.is_empty(), "{suite:?}: no arrays bounded");
    }
}
