//! Cross-validates the rap-admit static interference analyzer against
//! the simulator: on every benchmark suite, for the RAP decision mix and
//! the force-NFA CA baseline, every composition the analyzer *admits*
//! must be behaviour-preserving — each tenant's matches in the composed
//! run, demultiplexed back to its own namespace, are bit-identical to
//! its solo run over the same stream, and the traced peaks of the
//! composed run stay within the static bounds computed for the composed
//! plan. The analyzer never runs the automata, so any violation here is
//! a soundness bug in rap-admit's composition certificate.
//!
//! The test also exercises the rejection side: a deliberately
//! over-subscribed single-bank fabric carrying all seven suites must be
//! refused with the placement-overlap error (S001).
//!
//! A property test then extends the certificate check to the *chunked,
//! interleaved* regime rap-serve operates in: random tenants streaming
//! random inputs in randomly sized chunks through one shared serve
//! shard must each receive exactly the events of their solo
//! `simulate_streaming` run — demultiplexing never leaks or loses a
//! match across tenant boundaries, regardless of chunking.

use rap::admit::{admit, AdmitOptions, Rule, Tenant};
use rap::bound::{analyze_bounds, BoundOptions};
use rap::telemetry::{Telemetry, TelemetryConfig};
use rap::workloads::{generate_input, generate_patterns, Suite};
use rap::{Machine, Simulator};
use std::sync::Arc;

const PATTERNS: usize = 12;
const INPUT_LEN: usize = 4_000;
const SEED: u64 = 7;

/// One suite's independently verified solo plan plus its sources.
struct Solo {
    suite: Suite,
    sources: Vec<String>,
    patterns: Vec<rap::regex::Pattern>,
    images: Vec<rap::compiler::Compiled>,
    mapping: rap::mapper::Mapping,
}

fn solo(suite: Suite, machine: Machine) -> Solo {
    let sim = Simulator::new(machine)
        .with_bv_depth(suite.chosen_bv_depth())
        .with_bin_size(suite.chosen_bin_size());
    let sources = generate_patterns(suite, PATTERNS, SEED);
    let patterns: Vec<_> = sources
        .iter()
        .map(|s| rap::regex::parse_pattern(s).expect("suite patterns parse"))
        .collect();
    let images = sim.compile_parsed(&patterns).expect("suite compiles");
    let mapping = sim.map_verified(&images).expect("suite maps legally");
    Solo {
        suite,
        sources,
        patterns,
        images,
        mapping,
    }
}

fn view(s: &Solo) -> Tenant<'_> {
    Tenant {
        name: s.suite.name(),
        images: &s.images,
        patterns: &s.patterns,
        mapping: &s.mapping,
        match_base: None,
        slot: None,
    }
}

/// Admits the given tenants on an auto-sized fabric; when the analyzer
/// certifies the composition, simulates it and checks the certificate's
/// two claims (per-tenant match equality, peaks within composed static
/// bounds). Returns whether the composition was admitted.
fn validate_composition(machine: Machine, solos: &[&Solo], matched: &mut usize) -> bool {
    let label: Vec<&str> = solos.iter().map(|s| s.suite.name()).collect();
    let views: Vec<Tenant<'_>> = solos.iter().map(|s| view(s)).collect();
    let arch = Simulator::new(machine).mapper.arch;
    let analysis = admit(&views, &arch, &AdmitOptions::default());
    let Some(composed) = &analysis.composed else {
        return false;
    };

    // One shared stream with planted matches for every tenant.
    let combined: Vec<String> = solos
        .iter()
        .flat_map(|s| s.sources.iter().cloned())
        .collect();
    let input = generate_input(&combined, INPUT_LEN, 0.05, SEED);

    // The composed run, densely traced.
    let telemetry = Arc::new(Telemetry::new(TelemetryConfig {
        sample_every: 1,
        ring_capacity: 1 << 20,
    }));
    let sim = Simulator::new(machine).with_telemetry(Arc::clone(&telemetry));
    let (merged, _stats) = sim.simulate_streaming(&composed.images, &composed.mapping, &input);

    // Claim 1: demultiplexed matches are bit-identical to solo runs.
    for (idx, summary) in composed.tenants.iter().enumerate() {
        let tenant = solos
            .iter()
            .find(|s| s.suite.name() == summary.name)
            .unwrap_or_else(|| panic!("{machine:?} {label:?}: unknown tenant {}", summary.name));
        let solo_sim = Simulator::new(machine);
        let (solo_run, _) = solo_sim.simulate_streaming(&tenant.images, &tenant.mapping, &input);
        let demuxed = composed.tenant_matches(idx, &merged.matches);
        assert_eq!(
            demuxed, solo_run.matches,
            "{machine:?} {label:?}: tenant {} diverges from its solo run",
            summary.name
        );
        *matched += solo_run.matches.len();
    }

    // Claim 2: observed peaks stay within the composed plan's static
    // budgets, computed over the merged pattern namespace.
    let cat_patterns: Vec<rap::regex::Pattern> = composed
        .tenants
        .iter()
        .flat_map(|summary| {
            let tenant = solos
                .iter()
                .find(|s| s.suite.name() == summary.name)
                .expect("summary names a tenant");
            assert_eq!(
                summary.pattern_range.1 - summary.pattern_range.0,
                tenant.patterns.len(),
                "{machine:?} {label:?}: pattern range out of step"
            );
            tenant.patterns.iter().cloned()
        })
        .collect();
    let bounds = analyze_bounds(
        &composed.images,
        &cat_patterns,
        &composed.mapping,
        &BoundOptions::bounds_only(),
    );
    for trace in &telemetry.drain_traces() {
        for (array, observed) in trace.peak_active_states() {
            let bound = bounds
                .arrays
                .iter()
                .find(|a| a.array == array as usize)
                .unwrap_or_else(|| panic!("{machine:?} {label:?}: no bound for array {array}"));
            assert!(
                observed <= bound.peak_active_states,
                "{machine:?} {label:?} array {array}: observed {observed} active states \
                 > composed static bound {}",
                bound.peak_active_states
            );
        }
        assert!(
            trace.peak_output_fifo_records() <= bounds.bank.output_fifo_records,
            "{machine:?} {label:?}: output records {} > composed bound {}",
            trace.peak_output_fifo_records(),
            bounds.bank.output_fifo_records
        );
    }
    true
}

#[test]
fn admitted_compositions_preserve_per_tenant_behaviour() {
    for machine in [Machine::Rap, Machine::Ca] {
        let solos: Vec<Solo> = Suite::all().iter().map(|&s| solo(s, machine)).collect();

        // A lone verified plan always fits a fabric sized for it: every
        // suite must solo-admit, and the composed run must reproduce it.
        let mut matched = 0usize;
        for s in &solos {
            assert!(
                validate_composition(machine, &[s], &mut matched),
                "{machine:?}: {} rejected solo",
                s.suite.name()
            );
        }

        // Adjacent suite pairs: validate every admitted composition.
        let mut admitted = 0usize;
        for i in 0..solos.len() {
            let j = (i + 1) % solos.len();
            if validate_composition(machine, &[&solos[i], &solos[j]], &mut matched) {
                admitted += 1;
            }
        }
        assert!(
            matched > 0,
            "{machine:?}: no composition produced any matches — vacuous equality"
        );
        match machine {
            // RAP's decomposed plans (NBVA counters, binned LNFAs) keep
            // shared-bank bursts small: every pair co-resides.
            Machine::Rap => assert_eq!(admitted, 7, "RAP must admit every adjacent pair"),
            // The CA baseline's force-NFA one-array-per-pattern plans
            // burst shared banks: some pairs must be refused, but the
            // analyzer is not vacuous — most still fit.
            _ => assert!(
                (4..7).contains(&admitted),
                "CA admitted {admitted}/7 adjacent pairs; expected interference on some"
            ),
        }
    }
}

mod interleaved_streaming {
    use proptest::prelude::*;
    use rap::pipeline::{BenchConfig, PatternSet, Pipeline};
    use rap::serve::{SendOutcome, ServeConfig, Server};
    use rap::Simulator;

    /// Compile-safe sources over a tiny alphabet, including one
    /// `$`-anchored pattern to exercise end-of-stream deferral.
    const POOL: [&str; 9] = [
        "abc", "a[ab]c", "ab", "ba+c", "c{3,9}a", "a.{2,6}b", "cab", "b[abc]a", "ca$",
    ];

    /// A tenant: 1–3 pool patterns, an input stream, and a cycle of
    /// chunk sizes to split it with.
    fn arb_tenant() -> impl Strategy<Value = (Vec<usize>, Vec<u8>, Vec<usize>)> {
        (
            prop::collection::vec(0..POOL.len(), 1..4),
            prop::collection::vec(
                prop_oneof![4 => Just(b'a'), 4 => Just(b'b'), 4 => Just(b'c'), 1 => Just(b'x')],
                1..200,
            ),
            prop::collection::vec(1usize..40, 1..8),
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Interleaved chunked streaming through one shared serve shard
        /// delivers each tenant exactly its solo streaming run.
        #[test]
        fn interleaved_chunked_streams_match_solo_runs(
            tenants in prop::collection::vec(arb_tenant(), 2..5),
        ) {
            let spec = BenchConfig {
                patterns_per_suite: 4,
                input_len: 256,
                match_rate: 0.02,
                seed: 3,
            };
            // One shard: every tenant co-resides on one composed plan.
            let server = Server::new(
                Pipeline::new(spec),
                ServeConfig { shards: 1, ..ServeConfig::default() },
            );
            let sets: Vec<PatternSet> = tenants
                .iter()
                .map(|(picks, _, _)| {
                    let sources: Vec<String> =
                        picks.iter().map(|&p| POOL[p].to_string()).collect();
                    PatternSet::parse(&sources).expect("pool patterns parse")
                })
                .collect();
            let sessions: Vec<_> = sets
                .iter()
                .enumerate()
                .map(|(i, set)| {
                    server
                        .register(&format!("pt-{i}"), set)
                        .expect("pool tenants admit")
                })
                .collect();

            // Round-robin interleave, each tenant cycling its own
            // chunk-size sequence; shed chunks retry after a drain.
            let mut cursors = vec![0usize; tenants.len()];
            let mut rounds = vec![0usize; tenants.len()];
            loop {
                let mut progressed = false;
                for (i, (_, input, sizes)) in tenants.iter().enumerate() {
                    let at = cursors[i];
                    if at >= input.len() {
                        continue;
                    }
                    let len = sizes[rounds[i] % sizes.len()].min(input.len() - at);
                    rounds[i] += 1;
                    let piece = &input[at..at + len];
                    while let SendOutcome::Shed = sessions[i].send(piece).expect("session open") {
                        sessions[i].wait_idle();
                    }
                    cursors[i] = at + len;
                    progressed = true;
                }
                if !progressed {
                    break;
                }
            }

            for (i, (_, input, _)) in tenants.iter().enumerate() {
                sessions[i].finish();
                let mut delivered = sessions[i].drain();
                delivered.sort_unstable_by_key(|m| (m.end, m.pattern));
                delivered.dedup();
                let sim = Simulator::new(server.config().machine);
                let plan = server
                    .pipeline()
                    .plan(&sim, &sets[i], None)
                    .expect("solo plan builds");
                let expected = plan.simulate_streaming(input).0.matches;
                prop_assert_eq!(
                    delivered,
                    expected,
                    "tenant pt-{} diverged from its solo streaming run",
                    i
                );
            }
        }
    }
}

#[test]
fn over_subscribed_composition_is_rejected_with_s001() {
    for machine in [Machine::Rap, Machine::Ca] {
        let solos: Vec<Solo> = Suite::all().iter().map(|&s| solo(s, machine)).collect();
        let views: Vec<Tenant<'_>> = solos.iter().map(view).collect();
        let arch = Simulator::new(machine).mapper.arch;
        let options = AdmitOptions {
            banks: Some(1),
            ..AdmitOptions::default()
        };
        let analysis = admit(&views, &arch, &options);
        assert!(
            !analysis.admitted(),
            "{machine:?}: seven tenants on one bank must not be admitted"
        );
        assert!(
            !analysis.report.by_rule(Rule::PlacementOverlap).is_empty(),
            "{machine:?}: expected an S001 placement-overlap finding, got:\n{}",
            analysis.report
        );
    }
}
