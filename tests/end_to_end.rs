//! Cross-crate integration tests: the full compile → map → simulate
//! pipeline against the software ground truth, across machines and
//! workload suites.

use rap::engines::{Engine, NfaEngine};
use rap::workloads::{generate_input, generate_patterns, Suite};
use rap::{Machine, Rap, Simulator};

fn parsed(patterns: &[String]) -> Vec<rap::regex::Regex> {
    patterns
        .iter()
        .map(|p| rap::regex::parse(p).expect("generated patterns parse"))
        .collect()
}

/// For every suite, every machine must report exactly the NFA
/// interpreter's match set — the paper's §5.2 consistency check, across
/// the whole stack.
#[test]
fn all_suites_all_machines_match_ground_truth() {
    for suite in Suite::all() {
        let patterns = generate_patterns(suite, 40, 99);
        let input = generate_input(&patterns, 6_000, 0.03, 99);
        let regexes = parsed(&patterns);
        let expect = NfaEngine::new(&regexes).scan(&input);
        for machine in Machine::all() {
            let sim = Simulator::new(machine)
                .with_bv_depth(suite.chosen_bv_depth())
                .with_bin_size(suite.chosen_bin_size());
            let result = sim.run(&regexes, &input).unwrap_or_else(|e| {
                panic!("{suite}/{machine}: {e}");
            });
            assert_eq!(
                result.matches.len(),
                expect.len(),
                "{suite}/{machine}: match count"
            );
            for (got, want) in result.matches.iter().zip(expect.iter()) {
                assert_eq!(
                    (got.pattern, got.end),
                    (want.pattern, want.end),
                    "{suite}/{machine}"
                );
            }
        }
    }
}

/// The facade pipeline agrees with driving the layers by hand.
#[test]
fn facade_equals_manual_pipeline() {
    let patterns = generate_patterns(Suite::Yara, 25, 5);
    let input = generate_input(&patterns, 4_000, 0.02, 5);
    let rap = Rap::compile(&patterns).expect("compiles");
    let report = rap.scan(&input);

    let sim = Simulator::new(Machine::Rap);
    let regexes = parsed(&patterns);
    let manual = sim.run(&regexes, &input).expect("runs");
    assert_eq!(report.matches, manual.matches);
    assert_eq!(report.metrics.matches, manual.metrics.matches);
}

/// Scanning is deterministic and stateless across calls.
#[test]
fn scans_are_reproducible() {
    let patterns = generate_patterns(Suite::Snort, 30, 3);
    let input = generate_input(&patterns, 5_000, 0.02, 3);
    let rap = Rap::compile(&patterns).expect("compiles");
    let a = rap.scan(&input);
    let b = rap.scan(&input);
    assert_eq!(a.matches, b.matches);
    assert_eq!(a.metrics.cycles, b.metrics.cycles);
    assert_eq!(a.metrics.energy_uj, b.metrics.energy_uj);
}

/// Concatenating streams is equivalent to scanning the concatenation
/// (no hidden state leaks between independent scans of the same image).
#[test]
fn matches_depend_only_on_prefix() {
    let patterns = vec!["abc".to_string(), "b{6,20}c".to_string()];
    let rap = Rap::compile(&patterns).expect("compiles");
    let full = b"xxabcyy bbbbbbbbc abc";
    let full_matches = rap.scan(full).matches;
    // Every match of a prefix scan appears in the full scan.
    for cut in [5usize, 10, 17] {
        for m in rap.scan(&full[..cut]).matches {
            assert!(
                full_matches.contains(&m),
                "prefix match {m:?} missing from full scan"
            );
        }
    }
}

/// The streaming (bank-buffer) path reports exactly the batch path's
/// matches, with the extra buffer statistics being self-consistent.
#[test]
fn streaming_path_equals_batch_path() {
    let patterns = generate_patterns(Suite::Suricata, 40, 17);
    let input = generate_input(&patterns, 8_000, 0.03, 17);
    let rap = Rap::compile(&patterns).expect("compiles");
    let batch = rap.scan(&input);
    let (streamed, stats) = rap.scan_streaming(&input);
    assert_eq!(streamed.matches, batch.matches);
    assert!(streamed.metrics.cycles >= batch.metrics.cycles);
    assert_eq!(stats.stall_cycles.len(), stats.starved_cycles.len());
}

/// Mode assignment on the generated suites matches each suite's profile
/// direction (the Fig. 1 shape, coarse version).
#[test]
fn suite_mode_shapes() {
    let count_modes = |suite: Suite| -> (usize, usize, usize) {
        let patterns = generate_patterns(suite, 120, 77);
        let rap = Rap::compile(&patterns).expect("compiles");
        let mut c = (0, 0, 0);
        for m in rap.modes() {
            match m {
                rap::Mode::Nfa => c.0 += 1,
                rap::Mode::Nbva => c.1 += 1,
                rap::Mode::Lnfa => c.2 += 1,
            }
        }
        c
    };
    let (nfa, _, _) = count_modes(Suite::RegexLib);
    assert!(nfa > 50, "RegexLib should be NFA-majority");
    let (_, nbva, _) = count_modes(Suite::ClamAv);
    assert!(nbva > 90, "ClamAV should be NBVA-dominated");
    let (_, nbva, lnfa) = count_modes(Suite::Prosite);
    assert_eq!(nbva, 0, "Prosite compiles no NBVA");
    assert!(lnfa > 60, "Prosite should be LNFA-majority");
}
