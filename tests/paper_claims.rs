//! Shape tests for the paper's headline claims: these assert *directions*
//! and rough factors (who wins, where), not absolute numbers — the same
//! standard EXPERIMENTS.md applies to the full harness.

use rap::compiler::Mode;
use rap::workloads::{generate_input, generate_patterns, Suite};
use rap::{Machine, Simulator};

fn parsed(patterns: &[String]) -> Vec<rap::regex::Regex> {
    patterns
        .iter()
        .map(|p| rap::regex::parse(p).expect("parses"))
        .collect()
}

fn split_by_mode(regexes: &[rap::regex::Regex], mode: Mode) -> Vec<rap::regex::Regex> {
    let compiler = rap::compiler::Compiler::new(rap::compiler::CompilerConfig::default());
    regexes
        .iter()
        .filter(|re| compiler.decide(re) == mode)
        .cloned()
        .collect()
}

/// Table 2's headline: on NBVA-able regexes, NBVA mode beats NFA mode on
/// both energy and area by a multiple.
#[test]
fn nbva_mode_beats_nfa_mode_on_repetition_workloads() {
    let patterns = generate_patterns(Suite::Yara, 80, 42);
    let regexes = parsed(&patterns);
    let nbva_subset = split_by_mode(&regexes, Mode::Nbva);
    assert!(nbva_subset.len() >= 30, "suite should be NBVA-heavy");
    let input = generate_input(&patterns, 20_000, 0.02, 42);

    let sim = Simulator::new(Machine::Rap).with_bv_depth(16);
    let as_nbva = {
        let c = sim
            .compile_forced(&nbva_subset, Mode::Nbva)
            .expect("compiles");
        let m = sim.map(&c);
        sim.simulate(&c, &m, &input)
    };
    let as_nfa = {
        let c = sim
            .compile_forced(&nbva_subset, Mode::Nfa)
            .expect("compiles");
        let m = sim.map(&c);
        sim.simulate(&c, &m, &input)
    };
    let energy_ratio = as_nfa.metrics.energy_uj / as_nbva.metrics.energy_uj;
    let area_ratio = as_nfa.metrics.area_mm2 / as_nbva.metrics.area_mm2;
    assert!(
        energy_ratio > 1.5,
        "NFA/NBVA energy ratio {energy_ratio:.2} (paper: 3.7x)"
    );
    assert!(
        area_ratio > 1.5,
        "NFA/NBVA area ratio {area_ratio:.2} (paper: 4.0x)"
    );
    // ...at a bounded throughput penalty (the bit-vector stalls).
    assert!(as_nbva.metrics.throughput_gchps() > 1.0);
}

/// Table 3's headline: on linearizable regexes, LNFA mode cuts energy
/// versus NFA mode ("79% lower" in the paper; we require a clear multiple).
#[test]
fn lnfa_mode_beats_nfa_mode_on_chain_workloads() {
    let patterns = generate_patterns(Suite::Prosite, 120, 42);
    let regexes = parsed(&patterns);
    let lnfa_subset = split_by_mode(&regexes, Mode::Lnfa);
    assert!(lnfa_subset.len() >= 60, "suite should be LNFA-heavy");
    let input = generate_input(&patterns, 20_000, 0.02, 42);

    let sim = Simulator::new(Machine::Rap).with_bin_size(32);
    let as_lnfa = {
        let c = sim
            .compile_forced(&lnfa_subset, Mode::Lnfa)
            .expect("compiles");
        let m = sim.map(&c);
        sim.simulate(&c, &m, &input)
    };
    let as_nfa = {
        let c = sim
            .compile_forced(&lnfa_subset, Mode::Nfa)
            .expect("compiles");
        let m = sim.map(&c);
        sim.simulate(&c, &m, &input)
    };
    let energy_ratio = as_nfa.metrics.energy_uj / as_lnfa.metrics.energy_uj;
    assert!(
        energy_ratio > 1.8,
        "NFA/LNFA energy ratio {energy_ratio:.2} (paper: 4.7x)"
    );
    // Same throughput: both consume one character per cycle.
    assert_eq!(as_lnfa.metrics.cycles, as_nfa.metrics.cycles);
}

/// Fig. 10(a)'s trade-off: deeper bit vectors shrink area but increase
/// stall cycles, monotonically in both directions.
#[test]
fn bv_depth_tradeoff_is_monotone() {
    let patterns = generate_patterns(Suite::ClamAv, 50, 42);
    let regexes = parsed(&patterns);
    let subset = split_by_mode(&regexes, Mode::Nbva);
    let input = generate_input(&patterns, 15_000, 0.02, 42);
    let mut last_area = f64::INFINITY;
    let mut last_stalls = 0u64;
    for depth in [4u32, 8, 16, 32] {
        let sim = Simulator::new(Machine::Rap).with_bv_depth(depth);
        let c = sim.compile_forced(&subset, Mode::Nbva).expect("compiles");
        let m = sim.map(&c);
        let r = sim.simulate(&c, &m, &input);
        assert!(
            r.metrics.area_mm2 <= last_area,
            "area must shrink with depth (depth {depth})"
        );
        assert!(
            r.stall_cycles >= last_stalls,
            "stalls must grow with depth (depth {depth})"
        );
        last_area = r.metrics.area_mm2;
        last_stalls = r.stall_cycles;
    }
}

/// Fig. 10(b)'s effect: larger bins concentrate initial states and cut
/// LNFA energy.
#[test]
fn binning_cuts_lnfa_energy() {
    let patterns = generate_patterns(Suite::Prosite, 120, 7);
    let regexes = parsed(&patterns);
    let subset = split_by_mode(&regexes, Mode::Lnfa);
    let input = generate_input(&patterns, 15_000, 0.02, 7);
    let energy_at = |bin: u32| -> f64 {
        let sim = Simulator::new(Machine::Rap).with_bin_size(bin);
        let c = sim.compile_forced(&subset, Mode::Lnfa).expect("compiles");
        let m = sim.map(&c);
        sim.simulate(&c, &m, &input).metrics.energy_uj
    };
    let unbinned = energy_at(1);
    let binned = energy_at(32);
    assert!(
        binned < unbinned * 0.6,
        "bin=32 energy {binned:.2} should be well under bin=1 {unbinned:.2}"
    );
}

/// Fig. 12's headline: on a mixed workload, RAP's compute density beats
/// every baseline, and its energy efficiency beats CAMA and CA.
#[test]
fn rap_wins_overall_on_mixed_workloads() {
    let patterns = generate_patterns(Suite::Snort, 100, 42);
    let regexes = parsed(&patterns);
    let input = generate_input(&patterns, 20_000, 0.02, 42);
    let run = |machine: Machine| {
        Simulator::new(machine)
            .with_bv_depth(8)
            .with_bin_size(16)
            .run(&regexes, &input)
            .unwrap_or_else(|e| panic!("{machine}: {e}"))
    };
    let rap = run(Machine::Rap);
    let cama = run(Machine::Cama);
    let ca = run(Machine::Ca);
    let rap_density = rap.metrics.compute_density();
    assert!(
        rap_density > cama.metrics.compute_density(),
        "RAP density {rap_density:.2} vs CAMA {:.2}",
        cama.metrics.compute_density()
    );
    assert!(rap_density > ca.metrics.compute_density());
    assert!(rap.metrics.energy_efficiency() > cama.metrics.energy_efficiency());
    assert!(rap.metrics.energy_efficiency() > ca.metrics.energy_efficiency());
}

/// BVAP's structural weakness: its fixed bit-vector modules are dead area
/// on workloads without bounded repetitions (§2.2 / Table 3).
#[test]
fn bvap_wastes_area_without_repetitions() {
    let patterns = generate_patterns(Suite::Prosite, 80, 13);
    let regexes = parsed(&patterns);
    let input = generate_input(&patterns, 10_000, 0.02, 13);
    let bvap = Simulator::new(Machine::Bvap)
        .run(&regexes, &input)
        .expect("runs");
    let cama = Simulator::new(Machine::Cama)
        .run(&regexes, &input)
        .expect("runs");
    assert!(
        bvap.metrics.area_mm2 > cama.metrics.area_mm2 * 1.2,
        "BVAP {:.3} mm2 should exceed CAMA {:.3} mm2 by its BVM overhead",
        bvap.metrics.area_mm2,
        cama.metrics.area_mm2
    );
}

/// §5.5's replication: sharding a stalling NBVA workload over extra banks
/// recovers throughput at an area cost, without losing matches.
#[test]
fn replication_recovers_nbva_throughput() {
    use rap::sim::simulate_replicated;
    let patterns = generate_patterns(Suite::ClamAv, 40, 31);
    let input = generate_input(&patterns, 30_000, 0.05, 31);
    // Only bounded-span patterns shard; `.*`-style NFA patterns would
    // block replication (max_match_span = None), which is the documented
    // fallback, not what this test probes.
    let regexes = split_by_mode(&parsed(&patterns), Mode::Nbva);
    assert!(regexes.len() >= 25, "suite should be NBVA-heavy");
    let sim = Simulator::new(Machine::Rap).with_bv_depth(32);
    let compiled = sim.compile(&regexes).expect("compiles");
    let mapping = sim.map(&compiled);
    let base = sim.simulate(&compiled, &mapping, &input);
    let rep = simulate_replicated(&compiled, &mapping, &input, Machine::Rap, 2.0, 8);
    assert_eq!(rep.result.matches, base.matches);
    if base.metrics.throughput_gchps() < 1.9 {
        assert!(rep.replicas > 1);
        assert!(rep.result.metrics.throughput_gchps() > base.metrics.throughput_gchps());
    }
}

/// RAP's known cost: the per-tile local controller makes its pure-NFA mode
/// *worse* than CAMA (the paper's RegexLib observation).
#[test]
fn rap_pays_reconfigurability_tax_on_pure_nfa() {
    let patterns = generate_patterns(Suite::RegexLib, 80, 21);
    let regexes = parsed(&patterns);
    let nfa_subset = split_by_mode(&regexes, Mode::Nfa);
    let input = generate_input(&patterns, 10_000, 0.02, 21);
    let rap = Simulator::new(Machine::Rap);
    let c = rap
        .compile_forced(&nfa_subset, Mode::Nfa)
        .expect("compiles");
    let m = rap.map(&c);
    let rap_run = rap.simulate(&c, &m, &input);
    let cama = Simulator::new(Machine::Cama)
        .run(&nfa_subset, &input)
        .expect("runs");
    assert!(
        rap_run.metrics.energy_uj > cama.metrics.energy_uj,
        "RAP NFA {:.2} uJ should exceed CAMA {:.2} uJ (local controller tax)",
        rap_run.metrics.energy_uj,
        cama.metrics.energy_uj
    );
}
