//! End-to-end tests for `^`/`$`-anchored patterns: parser → compiler →
//! hardware simulation, on every machine.

use rap::automata::nbva::Nbva;
use rap::automata::nfa::Nfa;
use rap::regex::parse_pattern;
use rap::{Machine, Mode, Rap, Simulator};

#[test]
fn automaton_level_start_anchor() {
    let nfa = Nfa::from_pattern(&parse_pattern("^ab").expect("parses"));
    assert!(nfa.anchored_start());
    assert_eq!(nfa.match_ends(b"abab"), vec![2]);
    assert_eq!(nfa.match_ends(b"xab"), Vec::<usize>::new());
}

#[test]
fn automaton_level_end_anchor() {
    let nfa = Nfa::from_pattern(&parse_pattern("ab$").expect("parses"));
    assert!(nfa.anchored_end());
    assert_eq!(nfa.match_ends(b"abab"), vec![4]);
    assert_eq!(nfa.match_ends(b"abx"), Vec::<usize>::new());
}

#[test]
fn automaton_level_both_anchors() {
    let nfa = Nfa::from_pattern(&parse_pattern("^a{3}$").expect("parses"));
    assert_eq!(nfa.match_ends(b"aaa"), vec![3]);
    assert!(nfa.match_ends(b"aaaa").is_empty());
    assert!(nfa.match_ends(b"aa").is_empty());
}

#[test]
fn nbva_level_anchors() {
    // A bounded repetition large enough to stay a bit vector.
    let p = parse_pattern("^ab{10}c").expect("parses");
    let nbva = Nbva::from_pattern(&p, 4);
    assert!(nbva.anchored_start());
    assert!(nbva.bv_state_count() > 0);
    let hit = b"abbbbbbbbbbc";
    assert_eq!(nbva.match_ends(hit), vec![12]);
    let mut shifted = b"x".to_vec();
    shifted.extend_from_slice(hit);
    assert!(
        nbva.match_ends(&shifted).is_empty(),
        "must not match offset 1"
    );
}

#[test]
fn compiler_routes_anchored_patterns_away_from_lnfa() {
    let compiler = rap::compiler::Compiler::new(rap::compiler::CompilerConfig::default());
    // Unanchored: a plain literal takes LNFA mode.
    assert_eq!(
        compiler.compile_str("abcd").expect("compiles").mode(),
        Mode::Lnfa
    );
    // Anchored: same literal now takes NFA mode, carrying the flag.
    let anchored = compiler.compile_str("^abcd").expect("compiles");
    assert_eq!(anchored.mode(), Mode::Nfa);
    assert!(anchored.anchored_start());
    // Anchored repetitions keep NBVA mode.
    let rep = compiler.compile_str("^ab{20}c$").expect("compiles");
    assert_eq!(rep.mode(), Mode::Nbva);
    assert!(rep.anchored_start() && rep.anchored_end());
}

#[test]
fn all_machines_agree_on_anchored_workloads() {
    let patterns = vec![
        "^GET /".to_string(),
        "HTTP/1.1$".to_string(),
        "^hdr:a{6,20}end".to_string(),
        "plain".to_string(),
    ];
    let input = b"GET /index plain HTTP/1.1";
    let mut reference = None;
    for machine in Machine::all() {
        let sim = Simulator::new(machine);
        let result = sim
            .run_patterns(&patterns, input)
            .unwrap_or_else(|e| panic!("{machine}: {e}"));
        match &reference {
            None => reference = Some(result.matches),
            Some(expect) => assert_eq!(&result.matches, expect, "{machine}"),
        }
    }
    let matches = reference.expect("at least one machine ran");
    // ^GET / matches at offset 5; HTTP/1.1$ at the stream end; "plain"
    // mid-stream; the anchored repetition does not occur at offset 0.
    assert_eq!(matches.len(), 3, "{matches:?}");
    assert!(matches.iter().any(|m| m.pattern == 0 && m.end == 5));
    assert!(matches
        .iter()
        .any(|m| m.pattern == 1 && m.end == input.len()));
    assert!(matches.iter().all(|m| m.pattern != 2));
}

#[test]
fn facade_accepts_anchors() {
    let rap = Rap::compile(&["^start".to_string(), "finish$".to_string()]).expect("compiles");
    let report = rap.scan(b"start middle finish");
    assert_eq!(report.matches.len(), 2);
    // Re-ordered stream: the anchors now miss.
    let report = rap.scan(b"finish middle start");
    assert!(report.matches.is_empty());
}

#[test]
fn streaming_path_honours_anchors() {
    let rap = Rap::compile(&["^start".to_string(), "finish$".to_string()]).expect("compiles");
    let input = b"start middle finish";
    let batch = rap.scan(input);
    let (streamed, _) = rap.scan_streaming(input);
    assert_eq!(streamed.matches, batch.matches);
    assert_eq!(streamed.matches.len(), 2);
}

#[test]
fn dollar_only_counts_final_position() {
    let rap = Rap::compile(&["ab$".to_string()]).expect("compiles");
    assert_eq!(rap.scan(b"ab ab ab").matches.len(), 1);
    assert_eq!(rap.scan(b"ab ab ab ").matches.len(), 0);
}
