//! Offline stub of `serde_derive`.
//!
//! The build container has no access to crates.io, and nothing in this
//! workspace actually serializes data yet — the `#[derive(Serialize,
//! Deserialize)]` attributes on the plan/config types only reserve the
//! ability to. These derives therefore expand to nothing; swap the real
//! `serde`/`serde_derive` back in (delete `vendor/` and restore the
//! versioned workspace dependencies) when a wire format is needed.

use proc_macro::TokenStream;

/// Stub `Serialize` derive: expands to nothing.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Stub `Deserialize` derive: expands to nothing.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
