//! Offline implementation of `serde_derive` for the workspace's
//! vendored `serde`.
//!
//! The build container has no access to crates.io, so this derive is
//! written against bare `proc_macro` — no `syn`, no `quote`. A small
//! hand-rolled parser walks the derive input's token trees just far
//! enough to recover what codegen needs (type name, generic parameters,
//! field names / arities, enum variants), and the impls are emitted as
//! formatted source text parsed back into a `TokenStream`.
//!
//! Supported input shapes — everything this workspace derives on:
//!
//! - structs with named fields, tuple structs, unit structs;
//! - enums whose variants are unit, tuple, or struct-like (encoded as a
//!   `u32` tag in declaration order followed by the variant's fields);
//! - type generics with optional bounds (each parameter additionally
//!   gets a `serde::Serialize` / `serde::Deserialize` bound).
//!
//! Lifetimes, const generics, and `where` clauses are rejected with a
//! `compile_error!` naming the offending item rather than silently
//! generating wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize`: field-by-field encoding via the `bin`
/// codec, with a `u32` declaration-order tag for enum variants.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(&input, Trait::Serialize)
}

/// Derive `serde::Deserialize`: the mirror image of the `Serialize`
/// derive; unknown enum tags surface as `DecodeError::BadVariant`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(&input, Trait::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Trait {
    Serialize,
    Deserialize,
}

fn expand(input: &TokenStream, which: Trait) -> TokenStream {
    let parsed = match parse_input(input.clone()) {
        Ok(parsed) => parsed,
        Err(msg) => {
            let escaped = msg.replace('\\', "\\\\").replace('"', "\\\"");
            return format!("compile_error!(\"{escaped}\");")
                .parse()
                .expect("compile_error literal parses");
        }
    };
    let body = match which {
        Trait::Serialize => gen_serialize(&parsed),
        Trait::Deserialize => gen_deserialize(&parsed),
    };
    let source = format!(
        "const _: () = {{\n\
         extern crate serde as _serde;\n\
         #[automatically_derived]\n\
         #[allow(clippy::all, clippy::pedantic, clippy::nursery, unused_variables)]\n\
         {body}\n\
         }};"
    );
    source.parse().unwrap_or_else(|e| {
        panic!(
            "serde_derive generated invalid Rust for `{}`: {e}\n{source}",
            parsed.name
        )
    })
}

// ---------------------------------------------------------------------------
// Input model
// ---------------------------------------------------------------------------

struct Input {
    name: String,
    /// Generic type parameters as `(ident, existing bounds)` pairs.
    generics: Vec<(String, String)>,
    kind: Kind,
}

enum Kind {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    fields: VariantFields,
}

enum VariantFields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

impl Input {
    /// `<T: Bound + _serde::Serialize>` / empty when non-generic.
    fn impl_generics(&self, which: Trait) -> String {
        if self.generics.is_empty() {
            return String::new();
        }
        let added = match which {
            Trait::Serialize => "_serde::Serialize",
            Trait::Deserialize => "_serde::Deserialize",
        };
        let params: Vec<String> = self
            .generics
            .iter()
            .map(|(name, bounds)| {
                if bounds.is_empty() {
                    format!("{name}: {added}")
                } else {
                    format!("{name}: {bounds} + {added}")
                }
            })
            .collect();
        format!("<{}>", params.join(", "))
    }

    /// `<T>` / empty when non-generic.
    fn ty_generics(&self) -> String {
        if self.generics.is_empty() {
            return String::new();
        }
        let names: Vec<&str> = self
            .generics
            .iter()
            .map(|(name, _)| name.as_str())
            .collect();
        format!("<{}>", names.join(", "))
    }
}

// ---------------------------------------------------------------------------
// Token cursor
// ---------------------------------------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Self {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let tok = self.tokens.get(self.pos).cloned();
        if tok.is_some() {
            self.pos += 1;
        }
        tok
    }

    fn at_punct(&self, ch: char) -> bool {
        matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ch)
    }

    fn eat_punct(&mut self, ch: char) -> bool {
        if self.at_punct(ch) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn at_ident(&self, word: &str) -> bool {
        matches!(self.peek(), Some(TokenTree::Ident(id)) if id.to_string() == word)
    }

    /// Skip any number of outer attributes (`#[...]`).
    fn skip_attrs(&mut self) {
        while self.at_punct('#') {
            self.pos += 1;
            if matches!(self.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
            {
                self.pos += 1;
            }
        }
    }

    /// Skip a visibility qualifier (`pub`, `pub(crate)`, ...).
    fn skip_vis(&mut self) {
        if self.at_ident("pub") {
            self.pos += 1;
            if matches!(self.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                self.pos += 1;
            }
        }
    }

    /// Skip one type (or expression), stopping at a top-level comma.
    /// Returns `true` if a comma was consumed, `false` at end of input.
    fn skip_type(&mut self) -> bool {
        let mut depth: usize = 0;
        while let Some(tok) = self.peek() {
            if let TokenTree::Punct(p) = tok {
                match p.as_char() {
                    ',' if depth == 0 => {
                        self.pos += 1;
                        return true;
                    }
                    '<' => depth += 1,
                    '>' => depth = depth.saturating_sub(1),
                    '-' => {
                        // `->` in fn-pointer types: don't let its '>'
                        // unbalance the angle-bracket depth.
                        self.pos += 1;
                        if self.at_punct('>') {
                            self.pos += 1;
                        }
                        continue;
                    }
                    _ => {}
                }
            }
            self.pos += 1;
        }
        false
    }
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_input(stream: TokenStream) -> Result<Input, String> {
    let mut c = Cursor::new(stream);
    c.skip_attrs();
    c.skip_vis();

    let keyword = match c.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => {
            return Err(format!(
                "serde derive: expected `struct` or `enum`, got {other:?}"
            ))
        }
    };
    if keyword != "struct" && keyword != "enum" {
        return Err(format!("serde derive: `{keyword}` items are not supported"));
    }

    let name = match c.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("serde derive: expected type name, got {other:?}")),
    };

    let generics = parse_generics(&mut c, &name)?;

    if c.at_ident("where") {
        return Err(format!(
            "serde derive: `where` clauses are not supported (on `{name}`)"
        ));
    }

    let kind = if keyword == "enum" {
        match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream(), &name)?)
            }
            other => {
                return Err(format!(
                    "serde derive: expected enum body for `{name}`, got {other:?}"
                ))
            }
        }
    } else {
        match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream(), &name)?;
                Kind::NamedStruct(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = tuple_arity(g.stream());
                Kind::TupleStruct(arity)
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::UnitStruct,
            other => {
                return Err(format!(
                    "serde derive: expected struct body for `{name}`, got {other:?}"
                ))
            }
        }
    };

    Ok(Input {
        name,
        generics,
        kind,
    })
}

/// Parse `<...>` after the type name into `(ident, bounds)` pairs.
fn parse_generics(c: &mut Cursor, type_name: &str) -> Result<Vec<(String, String)>, String> {
    if !c.eat_punct('<') {
        return Ok(Vec::new());
    }
    // Collect the balanced interior of the angle brackets.
    let mut inner: Vec<TokenTree> = Vec::new();
    let mut depth = 1usize;
    loop {
        let tok = c
            .next()
            .ok_or_else(|| format!("serde derive: unbalanced generics on `{type_name}`"))?;
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => depth += 1,
                '>' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
        }
        inner.push(tok);
    }

    // Split the interior on top-level commas.
    let mut params: Vec<Vec<TokenTree>> = vec![Vec::new()];
    let mut inner_depth = 0usize;
    for tok in inner {
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => inner_depth += 1,
                '>' => inner_depth = inner_depth.saturating_sub(1),
                ',' if inner_depth == 0 => {
                    params.push(Vec::new());
                    continue;
                }
                _ => {}
            }
        }
        params.last_mut().expect("non-empty").push(tok);
    }

    let mut out = Vec::new();
    for param in params.into_iter().filter(|p| !p.is_empty()) {
        match &param[0] {
            TokenTree::Punct(p) if p.as_char() == '\'' => {
                return Err(format!(
                    "serde derive: lifetime parameters are not supported (on `{type_name}`)"
                ));
            }
            TokenTree::Ident(id) if id.to_string() == "const" => {
                return Err(format!(
                    "serde derive: const generics are not supported (on `{type_name}`)"
                ));
            }
            TokenTree::Ident(id) => {
                let ident = id.to_string();
                let mut bounds = Vec::new();
                if param.len() > 1 {
                    match &param[1] {
                        TokenTree::Punct(p) if p.as_char() == ':' => {
                            // Bounds run until a top-level `=` (default).
                            let mut depth = 0usize;
                            for tok in &param[2..] {
                                if let TokenTree::Punct(p) = tok {
                                    match p.as_char() {
                                        '<' => depth += 1,
                                        '>' => depth = depth.saturating_sub(1),
                                        '=' if depth == 0 => break,
                                        _ => {}
                                    }
                                }
                                bounds.push(tok.clone());
                            }
                        }
                        _ => {
                            return Err(format!(
                                "serde derive: unsupported generic parameter on `{type_name}`"
                            ));
                        }
                    }
                }
                let bounds = TokenStream::from_iter(bounds).to_string();
                out.push((ident, bounds));
            }
            other => {
                return Err(format!(
                    "serde derive: unsupported generic parameter {other:?} on `{type_name}`"
                ));
            }
        }
    }
    Ok(out)
}

fn parse_named_fields(stream: TokenStream, type_name: &str) -> Result<Vec<String>, String> {
    let mut c = Cursor::new(stream);
    let mut names = Vec::new();
    loop {
        c.skip_attrs();
        c.skip_vis();
        let Some(tok) = c.next() else { break };
        let TokenTree::Ident(id) = tok else {
            return Err(format!(
                "serde derive: expected field name in `{type_name}`, got {tok:?}"
            ));
        };
        names.push(id.to_string());
        if !c.eat_punct(':') {
            return Err(format!(
                "serde derive: expected `:` after field `{id}` in `{type_name}`"
            ));
        }
        if !c.skip_type() {
            break;
        }
    }
    Ok(names)
}

fn tuple_arity(stream: TokenStream) -> usize {
    let mut c = Cursor::new(stream);
    let mut arity = 0usize;
    loop {
        c.skip_attrs();
        c.skip_vis();
        if c.peek().is_none() {
            break;
        }
        arity += 1;
        if !c.skip_type() {
            break;
        }
    }
    arity
}

fn parse_variants(stream: TokenStream, type_name: &str) -> Result<Vec<Variant>, String> {
    let mut c = Cursor::new(stream);
    let mut variants = Vec::new();
    loop {
        c.skip_attrs();
        let Some(tok) = c.next() else { break };
        let TokenTree::Ident(id) = tok else {
            return Err(format!(
                "serde derive: expected variant name in `{type_name}`, got {tok:?}"
            ));
        };
        let name = id.to_string();
        let fields = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let body = g.stream();
                c.pos += 1;
                VariantFields::Named(parse_named_fields(body, type_name)?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let body = g.stream();
                c.pos += 1;
                VariantFields::Tuple(tuple_arity(body))
            }
            _ => VariantFields::Unit,
        };
        if c.eat_punct('=') {
            // Explicit discriminant: skip the expression.
            c.skip_type();
        } else {
            c.eat_punct(',');
        }
        variants.push(Variant { name, fields });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let impl_generics = input.impl_generics(Trait::Serialize);
    let ty_generics = input.ty_generics();
    let body = match &input.kind {
        Kind::UnitStruct => String::new(),
        Kind::NamedStruct(fields) => fields
            .iter()
            .map(|f| format!("_serde::Serialize::serialize(&self.{f}, _e);"))
            .collect::<Vec<_>>()
            .join("\n"),
        Kind::TupleStruct(arity) => (0..*arity)
            .map(|i| format!("_serde::Serialize::serialize(&self.{i}, _e);"))
            .collect::<Vec<_>>()
            .join("\n"),
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .enumerate()
                .map(|(tag, v)| {
                    let vname = &v.name;
                    match &v.fields {
                        VariantFields::Unit => {
                            format!("Self::{vname} => {{ _e.write_u32({tag}u32); }}")
                        }
                        VariantFields::Tuple(arity) => {
                            let binds: Vec<String> = (0..*arity).map(|i| format!("_f{i}")).collect();
                            let writes: Vec<String> = binds
                                .iter()
                                .map(|b| format!("_serde::Serialize::serialize({b}, _e);"))
                                .collect();
                            format!(
                                "Self::{vname}({binds}) => {{ _e.write_u32({tag}u32); {writes} }}",
                                binds = binds.join(", "),
                                writes = writes.join("\n"),
                            )
                        }
                        VariantFields::Named(fields) => {
                            let binds: Vec<String> = fields
                                .iter()
                                .enumerate()
                                .map(|(i, f)| format!("{f}: _f{i}"))
                                .collect();
                            let writes: Vec<String> = (0..fields.len())
                                .map(|i| format!("_serde::Serialize::serialize(_f{i}, _e);"))
                                .collect();
                            format!(
                                "Self::{vname} {{ {binds} }} => {{ _e.write_u32({tag}u32); {writes} }}",
                                binds = binds.join(", "),
                                writes = writes.join("\n"),
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{\n{}\n}}", arms.join("\n"))
        }
    };
    format!(
        "impl{impl_generics} _serde::Serialize for {name}{ty_generics} {{\n\
         fn serialize(&self, _e: &mut _serde::bin::Encoder) {{\n{body}\n}}\n\
         }}"
    )
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let impl_generics = input.impl_generics(Trait::Deserialize);
    let ty_generics = input.ty_generics();
    let read = "_serde::Deserialize::deserialize(_d)?";
    let body = match &input.kind {
        Kind::UnitStruct => "::core::result::Result::Ok(Self)".to_string(),
        Kind::NamedStruct(fields) => {
            let inits: Vec<String> = fields.iter().map(|f| format!("{f}: {read}")).collect();
            format!(
                "::core::result::Result::Ok(Self {{ {} }})",
                inits.join(", ")
            )
        }
        Kind::TupleStruct(arity) => {
            let inits: Vec<String> = (0..*arity).map(|_| read.to_string()).collect();
            format!("::core::result::Result::Ok(Self({}))", inits.join(", "))
        }
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .enumerate()
                .map(|(tag, v)| {
                    let vname = &v.name;
                    match &v.fields {
                        VariantFields::Unit => {
                            format!("{tag}u32 => ::core::result::Result::Ok(Self::{vname}),")
                        }
                        VariantFields::Tuple(arity) => {
                            let inits: Vec<String> =
                                (0..*arity).map(|_| read.to_string()).collect();
                            format!(
                                "{tag}u32 => ::core::result::Result::Ok(Self::{vname}({})),",
                                inits.join(", ")
                            )
                        }
                        VariantFields::Named(fields) => {
                            let inits: Vec<String> =
                                fields.iter().map(|f| format!("{f}: {read}")).collect();
                            format!(
                                "{tag}u32 => ::core::result::Result::Ok(Self::{vname} {{ {} }}),",
                                inits.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "match _serde::bin::Decoder::read_u32(_d)? {{\n{arms}\n\
                 _tag => ::core::result::Result::Err(_serde::bin::DecodeError::bad_variant(\"{name}\", _tag)),\n\
                 }}",
                arms = arms.join("\n"),
            )
        }
    };
    format!(
        "impl{impl_generics} _serde::Deserialize for {name}{ty_generics} {{\n\
         fn deserialize(_d: &mut _serde::bin::Decoder<'_>) \
         -> ::core::result::Result<Self, _serde::bin::DecodeError> {{\n{body}\n}}\n\
         }}"
    )
}
