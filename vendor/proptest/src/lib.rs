//! Offline stub of the `proptest` API surface this workspace uses.
//!
//! The build container has no crates.io access, so the property tests run
//! against this generate-only re-implementation: strategies produce random
//! values from a deterministic SplitMix64 stream, failing cases panic with
//! the offending message, and there is **no shrinking** — a failure reports
//! the raw generated case. The combinator set (`Just`, ranges, tuples,
//! `prop_map`, `prop_filter`, `prop_recursive`, `prop_oneof!`, weighted
//! unions, `prop::collection::vec`, `any::<T>()`) mirrors upstream closely
//! enough that the in-repo tests compile unchanged; swap the real crate
//! back in by deleting `vendor/` once a registry is reachable.

/// Deterministic test RNG and run configuration.
pub mod test_runner {
    /// SplitMix64 stream driving all strategies in one test run.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A fixed-seed generator: property runs are reproducible.
        pub fn deterministic() -> Self {
            TestRng {
                state: 0x5eed_cafe_f00d_d00d,
            }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// A uniform draw from `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            self.next_u64() % bound
        }
    }

    /// How a single generated case ended.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// An assertion failed; the message explains which.
        Fail(String),
        /// The case was vetoed by `prop_assume!` and is not counted.
        Reject,
    }

    impl TestCaseError {
        /// Builds the failure variant.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }
    }

    /// Per-test knobs (only the case count is honoured here).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
        /// Rejected cases tolerated before the run aborts.
        pub max_global_rejects: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` successful cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..Self::default()
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 128,
                max_global_rejects: 65536,
            }
        }
    }
}

/// Value-generation strategies and combinators.
pub mod strategy {
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    /// Something that can produce random values of `Self::Value`.
    ///
    /// Unlike upstream there is no value tree: `new_value` returns the
    /// final value directly and failures are reported without shrinking.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Draws one value from `rng`.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Applies `f` to every generated value.
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { source: self, f }
        }

        /// Discards generated values failing `f`, re-drawing in place.
        fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                source: self,
                whence,
                f,
            }
        }

        /// Builds recursive values: `f` receives a strategy for the
        /// previous level and returns one for the next. `depth` levels are
        /// stacked; the size/branch hints are accepted for API parity but
        /// unused because no value tree exists to budget.
        fn prop_recursive<S2, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            f: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            S2: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S2,
        {
            let mut strat = self.boxed();
            for _ in 0..depth {
                let leaf = strat.clone();
                let deeper = f(strat).boxed();
                // Keep shallow values reachable at every level so the
                // distribution covers small and large cases alike.
                strat = Union::new(vec![(1, leaf), (2, deeper)]).boxed();
            }
            strat
        }

        /// Type-erases the strategy behind a cheap clonable handle.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// A reference-counted, type-erased strategy.
    pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            self.0.new_value(rng)
        }
    }

    /// Always produces a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, T, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            (self.f)(self.source.new_value(rng))
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Clone)]
    pub struct Filter<S, F> {
        source: S,
        whence: &'static str,
        f: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn new_value(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..10_000 {
                let v = self.source.new_value(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter {:?} rejected 10000 consecutive values",
                self.whence
            );
        }
    }

    /// Weighted choice between strategies of one value type.
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> Union<T> {
        /// Builds a union; weights must not all be zero.
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            let total = arms.iter().map(|(w, _)| u64::from(*w)).sum();
            assert!(total > 0, "prop_oneof! needs at least one non-zero weight");
            Union { arms, total }
        }
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union {
                arms: self.arms.clone(),
                total: self.total,
            }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total);
            for (w, strat) in &self.arms {
                let w = u64::from(*w);
                if pick < w {
                    return strat.new_value(rng);
                }
                pick -= w;
            }
            unreachable!("weights summed to total")
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start + rng.below(span) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "cannot sample empty range");
                    let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                    if span == 0 {
                        return rng.next_u64() as $t;
                    }
                    lo + rng.below(span) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.new_value(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

/// Types with a canonical full-domain strategy (subset of upstream).
pub mod arbitrary {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::marker::PhantomData;

    /// A type whose values can be drawn uniformly from the whole domain.
    pub trait Arbitrary: Sized {
        /// Draws one value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy form of [`Arbitrary`]; see [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A strategy over every value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies (only `vec`, the one this workspace uses).
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A length bound accepted by [`vec`].
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    /// Generates `Vec`s whose elements come from `element`.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo + 1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// A strategy producing vectors with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// One-stop import mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Namespace alias so `prop::collection::vec` works as upstream.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

// Re-export the commonly pathed names at the crate root too.
pub use arbitrary::any;
pub use strategy::{BoxedStrategy, Just, Strategy, Union};

/// Shared runner used by the [`proptest!`] expansion; not public API.
#[doc(hidden)]
pub fn __run_case_loop<F>(config: &test_runner::ProptestConfig, mut case: F)
where
    F: FnMut(&mut test_runner::TestRng) -> Result<(), test_runner::TestCaseError>,
{
    use test_runner::TestCaseError;
    let mut rng = test_runner::TestRng::deterministic();
    let mut passed = 0u32;
    let mut rejected = 0u32;
    while passed < config.cases {
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                assert!(
                    rejected <= config.max_global_rejects,
                    "prop_assume! rejected {rejected} cases before {passed} passed"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("property failed on case {passed}: {msg}")
            }
        }
    }
}

/// Declares property tests: each `fn name(arg in strategy, ...)` body runs
/// once per generated case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $cfg;
                $(let $arg = $strat;)*
                $crate::__run_case_loop(&__config, |__rng| {
                    $(let $arg = $crate::strategy::Strategy::new_value(&$arg, __rng);)*
                    let __case = || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    };
                    __case()
                });
            }
        )*
    };
}

/// `assert!` that fails the current property case instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `assert_eq!` for property cases; operands are borrowed, not moved.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l == *__r,
                    "assertion failed: `{:?}` != `{:?}`",
                    __l,
                    __r
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::fail(format!(
                            "assertion failed: `{:?}` != `{:?}`: {}",
                            __l,
                            __r,
                            format!($($fmt)+)
                        )),
                    );
                }
            }
        }
    };
}

/// `assert_ne!` for property cases; operands are borrowed, not moved.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(*__l != *__r, "assertion failed: `{:?}` == `{:?}`", __l, __r);
            }
        }
    };
}

/// Vetoes the current case without counting it as a failure.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Chooses between strategies, optionally `weight => strategy` pairs.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn union_respects_weights_roughly() {
        let strat = prop_oneof![9 => Just(1u32), 1 => Just(2u32)];
        let mut rng = crate::test_runner::TestRng::deterministic();
        let ones = (0..1000)
            .filter(|_| Strategy::new_value(&strat, &mut rng) == 1)
            .count();
        assert!((800..=980).contains(&ones), "ones = {ones}");
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Clone, Debug, PartialEq)]
        enum Tree {
            Leaf(u8),
            Node(Vec<Tree>),
        }
        let leaf = (0u8..10).prop_map(Tree::Leaf);
        let tree = leaf.prop_recursive(3, 20, 3, |inner| {
            crate::collection::vec(inner, 1..4).prop_map(Tree::Node)
        });
        let mut rng = crate::test_runner::TestRng::deterministic();
        for _ in 0..200 {
            let _ = tree.new_value(&mut rng);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_roundtrip(x in 0u32..100, v in prop::collection::vec(any::<u8>(), 0..8)) {
            prop_assume!(x != 99);
            prop_assert!(x < 99);
            prop_assert_eq!(v.len(), v.len(), "lengths always equal: {}", x);
            if x == 0 {
                return Ok(());
            }
            prop_assert_ne!(x, 0);
        }
    }
}
