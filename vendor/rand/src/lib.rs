//! Offline stub of the `rand` 0.10 API surface this workspace uses.
//!
//! Implements `StdRng`/`SeedableRng`/`RngExt` over a SplitMix64 generator:
//! deterministic, seedable, and statistically adequate for synthetic
//! workload generation — but **not** the real `StdRng` (ChaCha12), so
//! streams differ from upstream `rand`. Everything in-repo only compares
//! streams against themselves, which keeps determinism guarantees intact.

use std::ops::{Range, RangeInclusive};

/// Pseudo-random generators (mirrors `rand::rngs`).
pub mod rngs {
    pub use crate::StdRng;
}

/// A seedable generator (SplitMix64 core).
#[derive(Clone, Debug)]
pub struct StdRng {
    state: u64,
}

/// Seeding entry points (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        StdRng {
            state: seed.wrapping_add(0x9e37_79b9_7f4a_7c15),
        }
    }
}

/// The raw 64-bit output interface (mirrors `rand::RngCore`).
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        // SplitMix64 (Steele, Lea & Flood 2014).
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Values samplable uniformly from the generator's raw bits (mirrors the
/// `StandardUniform` distribution).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable uniformly (mirrors `rand::distr::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width u64 range: every output is valid.
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience sampling methods (mirrors the `rand::Rng`/`RngExt` extension
/// trait of rand 0.10).
pub trait RngExt: RngCore {
    /// A uniformly distributed value of `T`.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform draw from `range`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: u32 = rng.random_range(5..17);
            assert!((5..17).contains(&x));
            let y: usize = rng.random_range(2..=4);
            assert!((2..=4).contains(&y));
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!((0..100).all(|_| !rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _: u32 = rng.random_range(4..4);
    }
}
