//! Offline stub of the `criterion` API surface this workspace uses.
//!
//! The build container has no crates.io access, so the benchmark binaries
//! link against this minimal harness instead: every `Bencher::iter` runs a
//! short warm-up plus a fixed number of timed iterations and prints the
//! mean wall-clock time per iteration. There is no statistical analysis,
//! no HTML report, and no baseline comparison — the point is that
//! `cargo bench` compiles and produces order-of-magnitude numbers offline.
//! Restore the real crate (delete `vendor/`, re-pin the versioned
//! dependency) for publication-grade measurements.

use std::fmt::Display;
use std::time::Instant;

/// The benchmark harness entry point.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets how many timed iterations each benchmark runs.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.sample_size, None, f);
        self
    }
}

/// A set of benchmarks sharing a name prefix and throughput setting.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Declares the volume of work per iteration for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs a benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(
            &format!("{}/{}", self.name, id.label),
            self.sample_size,
            self.throughput,
            f,
        );
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        run_one(
            &format!("{}/{}", self.name, id.label),
            self.sample_size,
            self.throughput,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group (kept for API parity; nothing to flush here).
    pub fn finish(self) {}
}

/// A benchmark's identifier within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// An id that is just the parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Work volume per iteration, for items/bytes-per-second reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Times closures; handed to every benchmark body.
pub struct Bencher {
    iters: usize,
    nanos_per_iter: f64,
}

impl Bencher {
    /// Times `f` over the configured number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warm-up pass, outside the timed window.
        std::hint::black_box(f());
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.nanos_per_iter = start.elapsed().as_nanos() as f64 / self.iters as f64;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut b = Bencher {
        iters: sample_size,
        nanos_per_iter: 0.0,
    };
    f(&mut b);
    let rate = match throughput {
        Some(Throughput::Bytes(n)) if b.nanos_per_iter > 0.0 => {
            format!(
                "  {:.1} MiB/s",
                n as f64 / b.nanos_per_iter * 1e9 / (1 << 20) as f64
            )
        }
        Some(Throughput::Elements(n)) if b.nanos_per_iter > 0.0 => {
            format!("  {:.1} Melem/s", n as f64 / b.nanos_per_iter * 1e3)
        }
        _ => String::new(),
    };
    println!("bench {label:<48} {:>12.0} ns/iter{rate}", b.nanos_per_iter);
}

/// Collects benchmark functions into a runner; both the plain and the
/// `name = ...; config = ...; targets = ...` forms are accepted.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(c: &mut Criterion) {
        let mut group = c.benchmark_group("stub");
        group.throughput(Throughput::Bytes(64));
        group.bench_function("sum", |b| b.iter(|| (0u64..64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }

    criterion_group!(benches, tiny);

    #[test]
    fn harness_runs() {
        benches();
    }
}
