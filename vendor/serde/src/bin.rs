//! The binary codec behind [`Serialize`](crate::Serialize) and
//! [`Deserialize`](crate::Deserialize).
//!
//! Format rules:
//!
//! - integers and floats: fixed-width little-endian (`usize` travels as
//!   `u64`, floats as their IEEE-754 bit patterns, so round-trips are
//!   bit-identical even for NaN payloads);
//! - `bool`: one byte, `0` or `1` (anything else is a decode error);
//! - `char`: its `u32` scalar value (validated on decode);
//! - strings / `Vec` / `VecDeque` / maps: `u64` element count followed
//!   by the elements;
//! - `Option<T>`: one tag byte (`0` = `None`, `1` = `Some`) then the
//!   payload;
//! - `[T; N]`: the `N` elements with no prefix (the length is in the
//!   type);
//! - derived enums: `u32` variant tag (declaration order) then the
//!   variant's fields.
//!
//! Decoding is total: every primitive read checks the remaining length,
//! and [`Decoder::read_len`] rejects any length prefix that promises
//! more elements than the remaining bytes could possibly hold, so a
//! flipped byte in a length field fails fast instead of allocating.

use std::collections::{BTreeMap, VecDeque};
use std::fmt;

use crate::{Deserialize, Serialize};

/// Error produced when decoding malformed or truncated input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The input ended before a value could be fully read.
    Eof {
        /// Bytes the read needed.
        needed: usize,
        /// Bytes that were actually left.
        remaining: usize,
    },
    /// Input bytes remained after the outermost value was decoded.
    Trailing {
        /// Number of undecoded bytes left over.
        remaining: usize,
    },
    /// An enum variant tag did not match any known variant.
    BadVariant {
        /// Name of the enum being decoded.
        type_name: &'static str,
        /// The unrecognised tag value.
        tag: u32,
    },
    /// A length prefix promised more data than the input holds.
    BadLength {
        /// The claimed element count.
        len: u64,
        /// Bytes actually remaining in the input.
        remaining: usize,
    },
    /// A string's bytes were not valid UTF-8.
    Utf8,
    /// A `bool` byte was neither 0 nor 1, or a `char` was not a valid
    /// Unicode scalar value.
    BadValue(&'static str),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Eof { needed, remaining } => {
                write!(
                    f,
                    "unexpected end of input: needed {needed} bytes, {remaining} left"
                )
            }
            Self::Trailing { remaining } => {
                write!(f, "{remaining} trailing bytes after value")
            }
            Self::BadVariant { type_name, tag } => {
                write!(f, "unknown variant tag {tag} for enum {type_name}")
            }
            Self::BadLength { len, remaining } => {
                write!(
                    f,
                    "length prefix {len} exceeds remaining input ({remaining} bytes)"
                )
            }
            Self::Utf8 => write!(f, "invalid UTF-8 in string"),
            Self::BadValue(what) => write!(f, "invalid encoding for {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

impl DecodeError {
    /// Convenience constructor used by derived enum impls.
    #[must_use]
    pub fn bad_variant(type_name: &'static str, tag: u32) -> Self {
        Self::BadVariant { type_name, tag }
    }
}

/// Append-only byte sink for encoding.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Create an empty encoder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Consume the encoder, returning the encoded bytes.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Number of bytes encoded so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been encoded yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append raw bytes verbatim (no length prefix).
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Append one byte.
    pub fn write_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a little-endian `u16`.
    pub fn write_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    pub fn write_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    pub fn write_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u128`.
    pub fn write_u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `usize` as a little-endian `u64`.
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Append a `u64` length prefix.
    pub fn write_len(&mut self, len: usize) {
        self.write_u64(len as u64);
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn write_str(&mut self, s: &str) {
        self.write_len(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// Bounds-checked cursor over an input buffer for decoding.
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Wrap an input buffer.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True once every input byte has been consumed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Fail unless the input was consumed exactly.
    ///
    /// # Errors
    /// Returns [`DecodeError::Trailing`] if undecoded bytes remain.
    pub fn finish(self) -> Result<(), DecodeError> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(DecodeError::Trailing {
                remaining: self.remaining(),
            })
        }
    }

    /// Consume and return the next `n` bytes.
    ///
    /// # Errors
    /// Returns [`DecodeError::Eof`] if fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::Eof {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn array<const N: usize>(&mut self) -> Result<[u8; N], DecodeError> {
        let slice = self.take(N)?;
        let mut out = [0u8; N];
        out.copy_from_slice(slice);
        Ok(out)
    }

    /// Read one byte.
    ///
    /// # Errors
    /// Returns [`DecodeError::Eof`] on truncated input.
    pub fn read_u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.array::<1>()?[0])
    }

    /// Read a little-endian `u16`.
    ///
    /// # Errors
    /// Returns [`DecodeError::Eof`] on truncated input.
    pub fn read_u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_le_bytes(self.array()?))
    }

    /// Read a little-endian `u32`.
    ///
    /// # Errors
    /// Returns [`DecodeError::Eof`] on truncated input.
    pub fn read_u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.array()?))
    }

    /// Read a little-endian `u64`.
    ///
    /// # Errors
    /// Returns [`DecodeError::Eof`] on truncated input.
    pub fn read_u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.array()?))
    }

    /// Read a little-endian `u128`.
    ///
    /// # Errors
    /// Returns [`DecodeError::Eof`] on truncated input.
    pub fn read_u128(&mut self) -> Result<u128, DecodeError> {
        Ok(u128::from_le_bytes(self.array()?))
    }

    /// Read a `usize` encoded as a little-endian `u64`.
    ///
    /// # Errors
    /// Returns [`DecodeError::Eof`] on truncated input or
    /// [`DecodeError::BadLength`] if the value overflows `usize`.
    pub fn read_usize(&mut self) -> Result<usize, DecodeError> {
        let v = self.read_u64()?;
        usize::try_from(v).map_err(|_| DecodeError::BadLength {
            len: v,
            remaining: self.remaining(),
        })
    }

    /// Read a length prefix and validate it against the remaining input.
    ///
    /// `min_element_bytes` is the smallest possible encoded size of one
    /// element; a prefix claiming more elements than
    /// `remaining / min_element_bytes` is rejected before any
    /// allocation happens.
    ///
    /// # Errors
    /// Returns [`DecodeError::Eof`] on truncated input or
    /// [`DecodeError::BadLength`] for an impossible count.
    pub fn read_len(&mut self, min_element_bytes: usize) -> Result<usize, DecodeError> {
        let raw = self.read_u64()?;
        let len = usize::try_from(raw).map_err(|_| DecodeError::BadLength {
            len: raw,
            remaining: self.remaining(),
        })?;
        let floor = min_element_bytes.max(1);
        if len > self.remaining() / floor {
            return Err(DecodeError::BadLength {
                len: raw,
                remaining: self.remaining(),
            });
        }
        Ok(len)
    }

    /// Read a length-prefixed UTF-8 string.
    ///
    /// # Errors
    /// Returns [`DecodeError`] on truncation, a bad length, or invalid
    /// UTF-8.
    pub fn read_string(&mut self) -> Result<String, DecodeError> {
        let len = self.read_len(1)?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::Utf8)
    }
}

/// Encode a value to a fresh byte vector.
pub fn to_bytes<T: Serialize + ?Sized>(value: &T) -> Vec<u8> {
    let mut encoder = Encoder::new();
    value.serialize(&mut encoder);
    encoder.into_bytes()
}

/// Decode a value from a byte slice, requiring the input to be consumed
/// exactly.
///
/// # Errors
/// Returns [`DecodeError`] on truncated, malformed, or oversized input.
pub fn from_bytes<T: Deserialize>(bytes: &[u8]) -> Result<T, DecodeError> {
    let mut decoder = Decoder::new(bytes);
    let value = T::deserialize(&mut decoder)?;
    decoder.finish()?;
    Ok(value)
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_int {
    ($($ty:ty => $write:ident / $read:ident),* $(,)?) => {
        $(
            impl Serialize for $ty {
                fn serialize(&self, encoder: &mut Encoder) {
                    encoder.$write(*self);
                }
            }
            impl Deserialize for $ty {
                fn deserialize(decoder: &mut Decoder<'_>) -> Result<Self, DecodeError> {
                    decoder.$read()
                }
            }
        )*
    };
}

impl_int! {
    u8 => write_u8 / read_u8,
    u16 => write_u16 / read_u16,
    u32 => write_u32 / read_u32,
    u64 => write_u64 / read_u64,
    u128 => write_u128 / read_u128,
    usize => write_usize / read_usize,
}

macro_rules! impl_signed {
    ($($ty:ty as $uty:ty),* $(,)?) => {
        $(
            impl Serialize for $ty {
                #[allow(clippy::cast_sign_loss)]
                fn serialize(&self, encoder: &mut Encoder) {
                    (*self as $uty).serialize(encoder);
                }
            }
            impl Deserialize for $ty {
                #[allow(clippy::cast_possible_wrap)]
                fn deserialize(decoder: &mut Decoder<'_>) -> Result<Self, DecodeError> {
                    Ok(<$uty>::deserialize(decoder)? as $ty)
                }
            }
        )*
    };
}

impl_signed! {
    i8 as u8,
    i16 as u16,
    i32 as u32,
    i64 as u64,
    i128 as u128,
    isize as usize,
}

impl Serialize for f32 {
    fn serialize(&self, encoder: &mut Encoder) {
        encoder.write_u32(self.to_bits());
    }
}

impl Deserialize for f32 {
    fn deserialize(decoder: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(Self::from_bits(decoder.read_u32()?))
    }
}

impl Serialize for f64 {
    fn serialize(&self, encoder: &mut Encoder) {
        encoder.write_u64(self.to_bits());
    }
}

impl Deserialize for f64 {
    fn deserialize(decoder: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(Self::from_bits(decoder.read_u64()?))
    }
}

impl Serialize for bool {
    fn serialize(&self, encoder: &mut Encoder) {
        encoder.write_u8(u8::from(*self));
    }
}

impl Deserialize for bool {
    fn deserialize(decoder: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        match decoder.read_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(DecodeError::BadValue("bool")),
        }
    }
}

impl Serialize for char {
    fn serialize(&self, encoder: &mut Encoder) {
        encoder.write_u32(*self as u32);
    }
}

impl Deserialize for char {
    fn deserialize(decoder: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Self::from_u32(decoder.read_u32()?).ok_or(DecodeError::BadValue("char"))
    }
}

impl Serialize for () {
    fn serialize(&self, _encoder: &mut Encoder) {}
}

impl Deserialize for () {
    fn deserialize(_decoder: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Strings
// ---------------------------------------------------------------------------

impl Serialize for str {
    fn serialize(&self, encoder: &mut Encoder) {
        encoder.write_str(self);
    }
}

impl Serialize for String {
    fn serialize(&self, encoder: &mut Encoder) {
        encoder.write_str(self);
    }
}

impl Deserialize for String {
    fn deserialize(decoder: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        decoder.read_string()
    }
}

// ---------------------------------------------------------------------------
// Containers
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self, encoder: &mut Encoder) {
        (**self).serialize(encoder);
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize(&self, encoder: &mut Encoder) {
        (**self).serialize(encoder);
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(decoder: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(Self::new(T::deserialize(decoder)?))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self, encoder: &mut Encoder) {
        match self {
            None => encoder.write_u8(0),
            Some(v) => {
                encoder.write_u8(1);
                v.serialize(encoder);
            }
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(decoder: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        match decoder.read_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::deserialize(decoder)?)),
            _ => Err(DecodeError::BadValue("Option tag")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self, encoder: &mut Encoder) {
        encoder.write_len(self.len());
        for item in self {
            item.serialize(encoder);
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self, encoder: &mut Encoder) {
        self.as_slice().serialize(encoder);
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(decoder: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let len = decoder.read_len(1)?;
        let mut out = Self::with_capacity(len);
        for _ in 0..len {
            out.push(T::deserialize(decoder)?);
        }
        Ok(out)
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn serialize(&self, encoder: &mut Encoder) {
        encoder.write_len(self.len());
        for item in self {
            item.serialize(encoder);
        }
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn deserialize(decoder: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let len = decoder.read_len(1)?;
        let mut out = Self::with_capacity(len);
        for _ in 0..len {
            out.push_back(T::deserialize(decoder)?);
        }
        Ok(out)
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize(&self, encoder: &mut Encoder) {
        encoder.write_len(self.len());
        for (key, value) in self {
            key.serialize(encoder);
            value.serialize(encoder);
        }
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize(decoder: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let len = decoder.read_len(2)?;
        let mut out = Self::new();
        for _ in 0..len {
            let key = K::deserialize(decoder)?;
            let value = V::deserialize(decoder)?;
            out.insert(key, value);
        }
        Ok(out)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self, encoder: &mut Encoder) {
        for item in self {
            item.serialize(encoder);
        }
    }
}

impl<T: Deserialize + Default + Copy, const N: usize> Deserialize for [T; N] {
    fn deserialize(decoder: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let mut out = [T::default(); N];
        for slot in &mut out {
            *slot = T::deserialize(decoder)?;
        }
        Ok(out)
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+)),* $(,)?) => {
        $(
            impl<$($name: Serialize),+> Serialize for ($($name,)+) {
                fn serialize(&self, encoder: &mut Encoder) {
                    $(self.$idx.serialize(encoder);)+
                }
            }
            impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
                fn deserialize(decoder: &mut Decoder<'_>) -> Result<Self, DecodeError> {
                    Ok(($($name::deserialize(decoder)?,)+))
                }
            }
        )*
    };
}

impl_tuple! {
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Serialize + Deserialize + PartialEq + std::fmt::Debug>(value: T) {
        let bytes = to_bytes(&value);
        let back: T = from_bytes(&bytes).expect("round trip decodes");
        assert_eq!(back, value);
        assert_eq!(to_bytes(&back), bytes, "re-encoding must be bit-identical");
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(0u8);
        round_trip(u16::MAX);
        round_trip(0xdead_beefu32);
        round_trip(u64::MAX - 1);
        round_trip(u128::MAX);
        round_trip(usize::MAX);
        round_trip(-42i64);
        round_trip(f64::NAN.to_bits()); // NaN itself is not PartialEq
        round_trip(3.5f64);
        round_trip(true);
        round_trip('é');
        round_trip(String::from("patterns"));
    }

    #[test]
    fn containers_round_trip() {
        round_trip(vec![1u32, 2, 3]);
        round_trip(Option::<u32>::None);
        round_trip(Some(vec![String::from("a"), String::new()]));
        round_trip(VecDeque::from(vec![7u64, 8]));
        round_trip(BTreeMap::from([(1u32, 2.0f64), (3, 4.0)]));
        round_trip([0u64; 4]);
        round_trip((1u32, String::from("x"), false));
        round_trip(Box::new(99u32));
    }

    #[test]
    fn truncated_input_is_an_error_not_a_panic() {
        let bytes = to_bytes(&vec![1u32, 2, 3]);
        for cut in 0..bytes.len() {
            assert!(from_bytes::<Vec<u32>>(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocation() {
        let mut bytes = to_bytes(&vec![1u8, 2, 3]);
        bytes[0..8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            from_bytes::<Vec<u8>>(&bytes),
            Err(DecodeError::BadLength { .. })
        ));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = to_bytes(&7u32);
        bytes.push(0);
        assert!(matches!(
            from_bytes::<u32>(&bytes),
            Err(DecodeError::Trailing { remaining: 1 })
        ));
    }

    #[test]
    fn bad_bool_and_option_tags_are_rejected() {
        assert!(from_bytes::<bool>(&[2]).is_err());
        assert!(from_bytes::<Option<u8>>(&[9, 0]).is_err());
    }
}
