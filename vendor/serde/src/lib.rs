//! Offline, dependency-free implementation of the `serde` facade.
//!
//! This began life as a no-op stub (empty marker traits, derives that
//! expanded to nothing) because the build container has no access to
//! crates.io. The persistent artifact store made a real wire format
//! necessary, so the stub grew into a small but genuine serialization
//! framework:
//!
//! - [`Serialize`] / [`Deserialize`] are real traits with methods, but
//!   they target one concrete binary codec ([`bin`]) instead of serde's
//!   generic `Serializer`/`Deserializer` visitors. Every type in this
//!   workspace that derives them gets a compact little-endian encoding.
//! - `#[derive(Serialize, Deserialize)]` (re-exported from
//!   `serde_derive`) generates field-by-field codec impls for structs
//!   and tagged-union impls for enums.
//!
//! The encoding is deliberately boring: fixed-width little-endian
//! primitives, `u64` length prefixes for strings and sequences, and
//! `u32` variant tags for enums. Decoding never panics: every read is
//! bounds-checked and returns [`bin::DecodeError`], and length prefixes
//! are validated against the remaining input before any allocation so a
//! corrupt prefix cannot trigger an OOM.

pub use serde_derive::{Deserialize, Serialize};

pub mod bin;

/// A type that can encode itself into the [`bin`] binary format.
pub trait Serialize {
    /// Append this value's encoding to `encoder`.
    fn serialize(&self, encoder: &mut bin::Encoder);
}

/// A type that can decode itself from the [`bin`] binary format.
///
/// Unlike upstream serde there is no deserializer lifetime: decoding
/// always copies out of the input buffer into owned values.
pub trait Deserialize: Sized {
    /// Decode one value from the front of `decoder`.
    ///
    /// # Errors
    /// Returns [`bin::DecodeError`] if the input is truncated or
    /// malformed; implementations must never panic on bad input.
    fn deserialize(decoder: &mut bin::Decoder<'_>) -> Result<Self, bin::DecodeError>;
}
