//! Offline stub of the `serde` facade.
//!
//! Re-exports the no-op `Serialize`/`Deserialize` derives from the stub
//! `serde_derive` and declares empty marker traits of the same names so
//! that trait bounds written against them still compile. No serialization
//! machinery exists here — see `vendor/serde_derive` for the rationale.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize` (no methods).
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize` (no methods, no lifetime).
pub trait Deserialize {}
