/root/repo/target/debug/examples/network_ids-c5ba3598e0a36eb7.d: examples/network_ids.rs

/root/repo/target/debug/examples/network_ids-c5ba3598e0a36eb7: examples/network_ids.rs

examples/network_ids.rs:
