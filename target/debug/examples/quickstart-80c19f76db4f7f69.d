/root/repo/target/debug/examples/quickstart-80c19f76db4f7f69.d: examples/quickstart.rs

/root/repo/target/debug/examples/libquickstart-80c19f76db4f7f69.rmeta: examples/quickstart.rs

examples/quickstart.rs:
