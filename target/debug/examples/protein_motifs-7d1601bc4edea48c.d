/root/repo/target/debug/examples/protein_motifs-7d1601bc4edea48c.d: examples/protein_motifs.rs

/root/repo/target/debug/examples/protein_motifs-7d1601bc4edea48c: examples/protein_motifs.rs

examples/protein_motifs.rs:
