/root/repo/target/debug/examples/network_ids-da2908f5ae0ed471.d: examples/network_ids.rs

/root/repo/target/debug/examples/libnetwork_ids-da2908f5ae0ed471.rmeta: examples/network_ids.rs

examples/network_ids.rs:
