/root/repo/target/debug/examples/protein_motifs-13946bc7a417b065.d: examples/protein_motifs.rs

/root/repo/target/debug/examples/libprotein_motifs-13946bc7a417b065.rmeta: examples/protein_motifs.rs

examples/protein_motifs.rs:
