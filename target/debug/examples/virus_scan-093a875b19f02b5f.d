/root/repo/target/debug/examples/virus_scan-093a875b19f02b5f.d: examples/virus_scan.rs

/root/repo/target/debug/examples/libvirus_scan-093a875b19f02b5f.rmeta: examples/virus_scan.rs

examples/virus_scan.rs:
