/root/repo/target/debug/examples/virus_scan-4674aba64e3a79c2.d: examples/virus_scan.rs

/root/repo/target/debug/examples/virus_scan-4674aba64e3a79c2: examples/virus_scan.rs

examples/virus_scan.rs:
