/root/repo/target/debug/examples/streaming-ac6e6d4bc6b6d412.d: examples/streaming.rs

/root/repo/target/debug/examples/streaming-ac6e6d4bc6b6d412: examples/streaming.rs

examples/streaming.rs:
