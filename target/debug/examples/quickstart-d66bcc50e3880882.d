/root/repo/target/debug/examples/quickstart-d66bcc50e3880882.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-d66bcc50e3880882: examples/quickstart.rs

examples/quickstart.rs:
