/root/repo/target/debug/examples/streaming-52a56c508578605f.d: examples/streaming.rs

/root/repo/target/debug/examples/libstreaming-52a56c508578605f.rmeta: examples/streaming.rs

examples/streaming.rs:
