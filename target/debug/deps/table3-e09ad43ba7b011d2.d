/root/repo/target/debug/deps/table3-e09ad43ba7b011d2.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-e09ad43ba7b011d2: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
