/root/repo/target/debug/deps/proptests-c9db17f35f50d2d8.d: crates/mapper/tests/proptests.rs

/root/repo/target/debug/deps/proptests-c9db17f35f50d2d8: crates/mapper/tests/proptests.rs

crates/mapper/tests/proptests.rs:
