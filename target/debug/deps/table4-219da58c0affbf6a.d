/root/repo/target/debug/deps/table4-219da58c0affbf6a.d: crates/bench/src/bin/table4.rs

/root/repo/target/debug/deps/table4-219da58c0affbf6a: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
