/root/repo/target/debug/deps/rap_sim-5f56076596664b9f.d: crates/sim/src/lib.rs crates/sim/src/array.rs crates/sim/src/bank.rs crates/sim/src/cost.rs crates/sim/src/replicate.rs crates/sim/src/result.rs

/root/repo/target/debug/deps/librap_sim-5f56076596664b9f.rlib: crates/sim/src/lib.rs crates/sim/src/array.rs crates/sim/src/bank.rs crates/sim/src/cost.rs crates/sim/src/replicate.rs crates/sim/src/result.rs

/root/repo/target/debug/deps/librap_sim-5f56076596664b9f.rmeta: crates/sim/src/lib.rs crates/sim/src/array.rs crates/sim/src/bank.rs crates/sim/src/cost.rs crates/sim/src/replicate.rs crates/sim/src/result.rs

crates/sim/src/lib.rs:
crates/sim/src/array.rs:
crates/sim/src/bank.rs:
crates/sim/src/cost.rs:
crates/sim/src/replicate.rs:
crates/sim/src/result.rs:
