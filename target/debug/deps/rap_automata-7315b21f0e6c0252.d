/root/repo/target/debug/deps/rap_automata-7315b21f0e6c0252.d: crates/automata/src/lib.rs crates/automata/src/bitvec.rs crates/automata/src/glushkov.rs crates/automata/src/lnfa.rs crates/automata/src/nbva.rs crates/automata/src/nca.rs crates/automata/src/nfa.rs

/root/repo/target/debug/deps/librap_automata-7315b21f0e6c0252.rlib: crates/automata/src/lib.rs crates/automata/src/bitvec.rs crates/automata/src/glushkov.rs crates/automata/src/lnfa.rs crates/automata/src/nbva.rs crates/automata/src/nca.rs crates/automata/src/nfa.rs

/root/repo/target/debug/deps/librap_automata-7315b21f0e6c0252.rmeta: crates/automata/src/lib.rs crates/automata/src/bitvec.rs crates/automata/src/glushkov.rs crates/automata/src/lnfa.rs crates/automata/src/nbva.rs crates/automata/src/nca.rs crates/automata/src/nfa.rs

crates/automata/src/lib.rs:
crates/automata/src/bitvec.rs:
crates/automata/src/glushkov.rs:
crates/automata/src/lnfa.rs:
crates/automata/src/nbva.rs:
crates/automata/src/nca.rs:
crates/automata/src/nfa.rs:
