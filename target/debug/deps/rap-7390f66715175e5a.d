/root/repo/target/debug/deps/rap-7390f66715175e5a.d: src/lib.rs

/root/repo/target/debug/deps/librap-7390f66715175e5a.rmeta: src/lib.rs

src/lib.rs:
