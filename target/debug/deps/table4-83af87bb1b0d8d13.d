/root/repo/target/debug/deps/table4-83af87bb1b0d8d13.d: crates/bench/src/bin/table4.rs

/root/repo/target/debug/deps/libtable4-83af87bb1b0d8d13.rmeta: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
