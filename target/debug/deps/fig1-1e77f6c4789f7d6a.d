/root/repo/target/debug/deps/fig1-1e77f6c4789f7d6a.d: crates/bench/src/bin/fig1.rs

/root/repo/target/debug/deps/fig1-1e77f6c4789f7d6a: crates/bench/src/bin/fig1.rs

crates/bench/src/bin/fig1.rs:
