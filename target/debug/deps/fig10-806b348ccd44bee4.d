/root/repo/target/debug/deps/fig10-806b348ccd44bee4.d: crates/bench/src/bin/fig10.rs

/root/repo/target/debug/deps/fig10-806b348ccd44bee4: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
