/root/repo/target/debug/deps/table2-9e6c48b43a290088.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-9e6c48b43a290088: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
