/root/repo/target/debug/deps/fig12-19b328639a2ca20c.d: crates/bench/src/bin/fig12.rs

/root/repo/target/debug/deps/libfig12-19b328639a2ca20c.rmeta: crates/bench/src/bin/fig12.rs

crates/bench/src/bin/fig12.rs:
