/root/repo/target/debug/deps/rap_cli-61470e1b436847ae.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands/mod.rs crates/cli/src/commands/compare.rs crates/cli/src/commands/compile.rs crates/cli/src/commands/dot.rs crates/cli/src/commands/gen.rs crates/cli/src/commands/layout.rs crates/cli/src/commands/scan.rs

/root/repo/target/debug/deps/librap_cli-61470e1b436847ae.rmeta: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands/mod.rs crates/cli/src/commands/compare.rs crates/cli/src/commands/compile.rs crates/cli/src/commands/dot.rs crates/cli/src/commands/gen.rs crates/cli/src/commands/layout.rs crates/cli/src/commands/scan.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands/mod.rs:
crates/cli/src/commands/compare.rs:
crates/cli/src/commands/compile.rs:
crates/cli/src/commands/dot.rs:
crates/cli/src/commands/gen.rs:
crates/cli/src/commands/layout.rs:
crates/cli/src/commands/scan.rs:
