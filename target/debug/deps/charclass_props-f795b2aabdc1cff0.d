/root/repo/target/debug/deps/charclass_props-f795b2aabdc1cff0.d: crates/regex/tests/charclass_props.rs

/root/repo/target/debug/deps/charclass_props-f795b2aabdc1cff0: crates/regex/tests/charclass_props.rs

crates/regex/tests/charclass_props.rs:
