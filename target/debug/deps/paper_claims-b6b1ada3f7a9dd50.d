/root/repo/target/debug/deps/paper_claims-b6b1ada3f7a9dd50.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-b6b1ada3f7a9dd50: tests/paper_claims.rs

tests/paper_claims.rs:
