/root/repo/target/debug/deps/fig12-510e89f7dcda0711.d: crates/bench/src/bin/fig12.rs

/root/repo/target/debug/deps/fig12-510e89f7dcda0711: crates/bench/src/bin/fig12.rs

crates/bench/src/bin/fig12.rs:
