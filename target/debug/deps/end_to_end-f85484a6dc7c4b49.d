/root/repo/target/debug/deps/end_to_end-f85484a6dc7c4b49.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-f85484a6dc7c4b49: tests/end_to_end.rs

tests/end_to_end.rs:
