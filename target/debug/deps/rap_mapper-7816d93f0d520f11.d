/root/repo/target/debug/deps/rap_mapper-7816d93f0d520f11.d: crates/mapper/src/lib.rs crates/mapper/src/binning.rs crates/mapper/src/pack.rs crates/mapper/src/plan.rs

/root/repo/target/debug/deps/librap_mapper-7816d93f0d520f11.rmeta: crates/mapper/src/lib.rs crates/mapper/src/binning.rs crates/mapper/src/pack.rs crates/mapper/src/plan.rs

crates/mapper/src/lib.rs:
crates/mapper/src/binning.rs:
crates/mapper/src/pack.rs:
crates/mapper/src/plan.rs:
