/root/repo/target/debug/deps/fig11-e9302d17a94b2d87.d: crates/bench/src/bin/fig11.rs

/root/repo/target/debug/deps/libfig11-e9302d17a94b2d87.rmeta: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
