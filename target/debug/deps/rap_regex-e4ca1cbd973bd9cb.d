/root/repo/target/debug/deps/rap_regex-e4ca1cbd973bd9cb.d: crates/regex/src/lib.rs crates/regex/src/analysis.rs crates/regex/src/ast.rs crates/regex/src/charclass.rs crates/regex/src/parser.rs crates/regex/src/rewrite.rs

/root/repo/target/debug/deps/librap_regex-e4ca1cbd973bd9cb.rlib: crates/regex/src/lib.rs crates/regex/src/analysis.rs crates/regex/src/ast.rs crates/regex/src/charclass.rs crates/regex/src/parser.rs crates/regex/src/rewrite.rs

/root/repo/target/debug/deps/librap_regex-e4ca1cbd973bd9cb.rmeta: crates/regex/src/lib.rs crates/regex/src/analysis.rs crates/regex/src/ast.rs crates/regex/src/charclass.rs crates/regex/src/parser.rs crates/regex/src/rewrite.rs

crates/regex/src/lib.rs:
crates/regex/src/analysis.rs:
crates/regex/src/ast.rs:
crates/regex/src/charclass.rs:
crates/regex/src/parser.rs:
crates/regex/src/rewrite.rs:
