/root/repo/target/debug/deps/charclass_props-71c44d73bb3b6cec.d: crates/regex/tests/charclass_props.rs

/root/repo/target/debug/deps/libcharclass_props-71c44d73bb3b6cec.rmeta: crates/regex/tests/charclass_props.rs

crates/regex/tests/charclass_props.rs:
