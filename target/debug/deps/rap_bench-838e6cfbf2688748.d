/root/repo/target/debug/deps/rap_bench-838e6cfbf2688748.d: crates/bench/src/lib.rs crates/bench/src/eval.rs crates/bench/src/tables.rs

/root/repo/target/debug/deps/librap_bench-838e6cfbf2688748.rlib: crates/bench/src/lib.rs crates/bench/src/eval.rs crates/bench/src/tables.rs

/root/repo/target/debug/deps/librap_bench-838e6cfbf2688748.rmeta: crates/bench/src/lib.rs crates/bench/src/eval.rs crates/bench/src/tables.rs

crates/bench/src/lib.rs:
crates/bench/src/eval.rs:
crates/bench/src/tables.rs:
