/root/repo/target/debug/deps/rap_compiler-9ada7b6de87f8c49.d: crates/compiler/src/lib.rs crates/compiler/src/lnfa.rs crates/compiler/src/nbva.rs crates/compiler/src/nfa.rs

/root/repo/target/debug/deps/librap_compiler-9ada7b6de87f8c49.rmeta: crates/compiler/src/lib.rs crates/compiler/src/lnfa.rs crates/compiler/src/nbva.rs crates/compiler/src/nfa.rs

crates/compiler/src/lib.rs:
crates/compiler/src/lnfa.rs:
crates/compiler/src/nbva.rs:
crates/compiler/src/nfa.rs:
