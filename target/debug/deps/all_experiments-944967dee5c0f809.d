/root/repo/target/debug/deps/all_experiments-944967dee5c0f809.d: crates/bench/src/bin/all_experiments.rs

/root/repo/target/debug/deps/liball_experiments-944967dee5c0f809.rmeta: crates/bench/src/bin/all_experiments.rs

crates/bench/src/bin/all_experiments.rs:
