/root/repo/target/debug/deps/proptests-19cd2a698ffe1ee1.d: crates/automata/tests/proptests.rs

/root/repo/target/debug/deps/libproptests-19cd2a698ffe1ee1.rmeta: crates/automata/tests/proptests.rs

crates/automata/tests/proptests.rs:
