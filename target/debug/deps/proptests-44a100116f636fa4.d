/root/repo/target/debug/deps/proptests-44a100116f636fa4.d: crates/engines/tests/proptests.rs

/root/repo/target/debug/deps/proptests-44a100116f636fa4: crates/engines/tests/proptests.rs

crates/engines/tests/proptests.rs:
