/root/repo/target/debug/deps/anchors-bd74fb18e3d0a643.d: tests/anchors.rs

/root/repo/target/debug/deps/anchors-bd74fb18e3d0a643: tests/anchors.rs

tests/anchors.rs:
