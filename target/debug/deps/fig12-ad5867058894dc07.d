/root/repo/target/debug/deps/fig12-ad5867058894dc07.d: crates/bench/src/bin/fig12.rs

/root/repo/target/debug/deps/libfig12-ad5867058894dc07.rmeta: crates/bench/src/bin/fig12.rs

crates/bench/src/bin/fig12.rs:
