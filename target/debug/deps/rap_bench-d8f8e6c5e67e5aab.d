/root/repo/target/debug/deps/rap_bench-d8f8e6c5e67e5aab.d: crates/bench/src/lib.rs crates/bench/src/eval.rs crates/bench/src/tables.rs

/root/repo/target/debug/deps/rap_bench-d8f8e6c5e67e5aab: crates/bench/src/lib.rs crates/bench/src/eval.rs crates/bench/src/tables.rs

crates/bench/src/lib.rs:
crates/bench/src/eval.rs:
crates/bench/src/tables.rs:
