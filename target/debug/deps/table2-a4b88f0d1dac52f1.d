/root/repo/target/debug/deps/table2-a4b88f0d1dac52f1.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/libtable2-a4b88f0d1dac52f1.rmeta: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
