/root/repo/target/debug/deps/rap_workloads-47afebb113424dd1.d: crates/workloads/src/lib.rs crates/workloads/src/anmlzoo.rs crates/workloads/src/builder.rs crates/workloads/src/input.rs crates/workloads/src/suites.rs

/root/repo/target/debug/deps/rap_workloads-47afebb113424dd1: crates/workloads/src/lib.rs crates/workloads/src/anmlzoo.rs crates/workloads/src/builder.rs crates/workloads/src/input.rs crates/workloads/src/suites.rs

crates/workloads/src/lib.rs:
crates/workloads/src/anmlzoo.rs:
crates/workloads/src/builder.rs:
crates/workloads/src/input.rs:
crates/workloads/src/suites.rs:
