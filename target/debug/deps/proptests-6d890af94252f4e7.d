/root/repo/target/debug/deps/proptests-6d890af94252f4e7.d: crates/regex/tests/proptests.rs

/root/repo/target/debug/deps/proptests-6d890af94252f4e7: crates/regex/tests/proptests.rs

crates/regex/tests/proptests.rs:
