/root/repo/target/debug/deps/proptests-ae4303c742364e8d.d: crates/arch/tests/proptests.rs

/root/repo/target/debug/deps/proptests-ae4303c742364e8d: crates/arch/tests/proptests.rs

crates/arch/tests/proptests.rs:
