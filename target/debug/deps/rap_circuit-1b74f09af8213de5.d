/root/repo/target/debug/deps/rap_circuit-1b74f09af8213de5.d: crates/circuit/src/lib.rs crates/circuit/src/energy.rs crates/circuit/src/metrics.rs crates/circuit/src/models.rs

/root/repo/target/debug/deps/rap_circuit-1b74f09af8213de5: crates/circuit/src/lib.rs crates/circuit/src/energy.rs crates/circuit/src/metrics.rs crates/circuit/src/models.rs

crates/circuit/src/lib.rs:
crates/circuit/src/energy.rs:
crates/circuit/src/metrics.rs:
crates/circuit/src/models.rs:
