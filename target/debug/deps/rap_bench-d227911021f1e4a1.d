/root/repo/target/debug/deps/rap_bench-d227911021f1e4a1.d: crates/bench/src/lib.rs crates/bench/src/eval.rs crates/bench/src/tables.rs

/root/repo/target/debug/deps/librap_bench-d227911021f1e4a1.rmeta: crates/bench/src/lib.rs crates/bench/src/eval.rs crates/bench/src/tables.rs

crates/bench/src/lib.rs:
crates/bench/src/eval.rs:
crates/bench/src/tables.rs:
