/root/repo/target/debug/deps/fig1-3de81aef6802cd2f.d: crates/bench/src/bin/fig1.rs

/root/repo/target/debug/deps/libfig1-3de81aef6802cd2f.rmeta: crates/bench/src/bin/fig1.rs

crates/bench/src/bin/fig1.rs:
