/root/repo/target/debug/deps/anchors-2a1727ba4f61af1f.d: tests/anchors.rs

/root/repo/target/debug/deps/libanchors-2a1727ba4f61af1f.rmeta: tests/anchors.rs

tests/anchors.rs:
