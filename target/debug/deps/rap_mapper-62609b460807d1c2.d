/root/repo/target/debug/deps/rap_mapper-62609b460807d1c2.d: crates/mapper/src/lib.rs crates/mapper/src/binning.rs crates/mapper/src/pack.rs crates/mapper/src/plan.rs

/root/repo/target/debug/deps/rap_mapper-62609b460807d1c2: crates/mapper/src/lib.rs crates/mapper/src/binning.rs crates/mapper/src/pack.rs crates/mapper/src/plan.rs

crates/mapper/src/lib.rs:
crates/mapper/src/binning.rs:
crates/mapper/src/pack.rs:
crates/mapper/src/plan.rs:
