/root/repo/target/debug/deps/proptests-a427b3de4b20be67.d: crates/regex/tests/proptests.rs

/root/repo/target/debug/deps/libproptests-a427b3de4b20be67.rmeta: crates/regex/tests/proptests.rs

crates/regex/tests/proptests.rs:
