/root/repo/target/debug/deps/rap-62e1f647fbb2752d.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/librap-62e1f647fbb2752d.rmeta: crates/cli/src/main.rs

crates/cli/src/main.rs:
