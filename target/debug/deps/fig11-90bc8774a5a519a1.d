/root/repo/target/debug/deps/fig11-90bc8774a5a519a1.d: crates/bench/src/bin/fig11.rs

/root/repo/target/debug/deps/libfig11-90bc8774a5a519a1.rmeta: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
