/root/repo/target/debug/deps/table3-07dc6fe8fb95aaa0.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/libtable3-07dc6fe8fb95aaa0.rmeta: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
