/root/repo/target/debug/deps/all_experiments-ddd1e8c48cdd8250.d: crates/bench/src/bin/all_experiments.rs

/root/repo/target/debug/deps/liball_experiments-ddd1e8c48cdd8250.rmeta: crates/bench/src/bin/all_experiments.rs

crates/bench/src/bin/all_experiments.rs:
