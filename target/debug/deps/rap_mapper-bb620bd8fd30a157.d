/root/repo/target/debug/deps/rap_mapper-bb620bd8fd30a157.d: crates/mapper/src/lib.rs crates/mapper/src/binning.rs crates/mapper/src/pack.rs crates/mapper/src/plan.rs

/root/repo/target/debug/deps/librap_mapper-bb620bd8fd30a157.rlib: crates/mapper/src/lib.rs crates/mapper/src/binning.rs crates/mapper/src/pack.rs crates/mapper/src/plan.rs

/root/repo/target/debug/deps/librap_mapper-bb620bd8fd30a157.rmeta: crates/mapper/src/lib.rs crates/mapper/src/binning.rs crates/mapper/src/pack.rs crates/mapper/src/plan.rs

crates/mapper/src/lib.rs:
crates/mapper/src/binning.rs:
crates/mapper/src/pack.rs:
crates/mapper/src/plan.rs:
