/root/repo/target/debug/deps/rap_workloads-4aebd1b5b24568e1.d: crates/workloads/src/lib.rs crates/workloads/src/anmlzoo.rs crates/workloads/src/builder.rs crates/workloads/src/input.rs crates/workloads/src/suites.rs

/root/repo/target/debug/deps/librap_workloads-4aebd1b5b24568e1.rmeta: crates/workloads/src/lib.rs crates/workloads/src/anmlzoo.rs crates/workloads/src/builder.rs crates/workloads/src/input.rs crates/workloads/src/suites.rs

crates/workloads/src/lib.rs:
crates/workloads/src/anmlzoo.rs:
crates/workloads/src/builder.rs:
crates/workloads/src/input.rs:
crates/workloads/src/suites.rs:
