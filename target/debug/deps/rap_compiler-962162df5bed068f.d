/root/repo/target/debug/deps/rap_compiler-962162df5bed068f.d: crates/compiler/src/lib.rs crates/compiler/src/lnfa.rs crates/compiler/src/nbva.rs crates/compiler/src/nfa.rs

/root/repo/target/debug/deps/rap_compiler-962162df5bed068f: crates/compiler/src/lib.rs crates/compiler/src/lnfa.rs crates/compiler/src/nbva.rs crates/compiler/src/nfa.rs

crates/compiler/src/lib.rs:
crates/compiler/src/lnfa.rs:
crates/compiler/src/nbva.rs:
crates/compiler/src/nfa.rs:
