/root/repo/target/debug/deps/rap_regex-b6796884cd6552d0.d: crates/regex/src/lib.rs crates/regex/src/analysis.rs crates/regex/src/ast.rs crates/regex/src/charclass.rs crates/regex/src/parser.rs crates/regex/src/rewrite.rs

/root/repo/target/debug/deps/rap_regex-b6796884cd6552d0: crates/regex/src/lib.rs crates/regex/src/analysis.rs crates/regex/src/ast.rs crates/regex/src/charclass.rs crates/regex/src/parser.rs crates/regex/src/rewrite.rs

crates/regex/src/lib.rs:
crates/regex/src/analysis.rs:
crates/regex/src/ast.rs:
crates/regex/src/charclass.rs:
crates/regex/src/parser.rs:
crates/regex/src/rewrite.rs:
