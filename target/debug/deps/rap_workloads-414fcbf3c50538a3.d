/root/repo/target/debug/deps/rap_workloads-414fcbf3c50538a3.d: crates/workloads/src/lib.rs crates/workloads/src/anmlzoo.rs crates/workloads/src/builder.rs crates/workloads/src/input.rs crates/workloads/src/suites.rs

/root/repo/target/debug/deps/librap_workloads-414fcbf3c50538a3.rlib: crates/workloads/src/lib.rs crates/workloads/src/anmlzoo.rs crates/workloads/src/builder.rs crates/workloads/src/input.rs crates/workloads/src/suites.rs

/root/repo/target/debug/deps/librap_workloads-414fcbf3c50538a3.rmeta: crates/workloads/src/lib.rs crates/workloads/src/anmlzoo.rs crates/workloads/src/builder.rs crates/workloads/src/input.rs crates/workloads/src/suites.rs

crates/workloads/src/lib.rs:
crates/workloads/src/anmlzoo.rs:
crates/workloads/src/builder.rs:
crates/workloads/src/input.rs:
crates/workloads/src/suites.rs:
