/root/repo/target/debug/deps/proptests-f9f70696243aae44.d: crates/mapper/tests/proptests.rs

/root/repo/target/debug/deps/libproptests-f9f70696243aae44.rmeta: crates/mapper/tests/proptests.rs

crates/mapper/tests/proptests.rs:
