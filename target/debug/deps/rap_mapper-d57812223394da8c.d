/root/repo/target/debug/deps/rap_mapper-d57812223394da8c.d: crates/mapper/src/lib.rs crates/mapper/src/binning.rs crates/mapper/src/pack.rs crates/mapper/src/plan.rs

/root/repo/target/debug/deps/librap_mapper-d57812223394da8c.rmeta: crates/mapper/src/lib.rs crates/mapper/src/binning.rs crates/mapper/src/pack.rs crates/mapper/src/plan.rs

crates/mapper/src/lib.rs:
crates/mapper/src/binning.rs:
crates/mapper/src/pack.rs:
crates/mapper/src/plan.rs:
