/root/repo/target/debug/deps/fig10-98bff5dec885072c.d: crates/bench/src/bin/fig10.rs

/root/repo/target/debug/deps/libfig10-98bff5dec885072c.rmeta: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
