/root/repo/target/debug/deps/fig13-a5e69ab37748c004.d: crates/bench/src/bin/fig13.rs

/root/repo/target/debug/deps/libfig13-a5e69ab37748c004.rmeta: crates/bench/src/bin/fig13.rs

crates/bench/src/bin/fig13.rs:
