/root/repo/target/debug/deps/rap_compiler-538917ffd9523a98.d: crates/compiler/src/lib.rs crates/compiler/src/lnfa.rs crates/compiler/src/nbva.rs crates/compiler/src/nfa.rs

/root/repo/target/debug/deps/librap_compiler-538917ffd9523a98.rlib: crates/compiler/src/lib.rs crates/compiler/src/lnfa.rs crates/compiler/src/nbva.rs crates/compiler/src/nfa.rs

/root/repo/target/debug/deps/librap_compiler-538917ffd9523a98.rmeta: crates/compiler/src/lib.rs crates/compiler/src/lnfa.rs crates/compiler/src/nbva.rs crates/compiler/src/nfa.rs

crates/compiler/src/lib.rs:
crates/compiler/src/lnfa.rs:
crates/compiler/src/nbva.rs:
crates/compiler/src/nfa.rs:
