/root/repo/target/debug/deps/rap_regex-0508d52bbef42f3c.d: crates/regex/src/lib.rs crates/regex/src/analysis.rs crates/regex/src/ast.rs crates/regex/src/charclass.rs crates/regex/src/parser.rs crates/regex/src/rewrite.rs

/root/repo/target/debug/deps/librap_regex-0508d52bbef42f3c.rmeta: crates/regex/src/lib.rs crates/regex/src/analysis.rs crates/regex/src/ast.rs crates/regex/src/charclass.rs crates/regex/src/parser.rs crates/regex/src/rewrite.rs

crates/regex/src/lib.rs:
crates/regex/src/analysis.rs:
crates/regex/src/ast.rs:
crates/regex/src/charclass.rs:
crates/regex/src/parser.rs:
crates/regex/src/rewrite.rs:
