/root/repo/target/debug/deps/rap_circuit-ce2059d3ecb6e173.d: crates/circuit/src/lib.rs crates/circuit/src/energy.rs crates/circuit/src/metrics.rs crates/circuit/src/models.rs

/root/repo/target/debug/deps/librap_circuit-ce2059d3ecb6e173.rlib: crates/circuit/src/lib.rs crates/circuit/src/energy.rs crates/circuit/src/metrics.rs crates/circuit/src/models.rs

/root/repo/target/debug/deps/librap_circuit-ce2059d3ecb6e173.rmeta: crates/circuit/src/lib.rs crates/circuit/src/energy.rs crates/circuit/src/metrics.rs crates/circuit/src/models.rs

crates/circuit/src/lib.rs:
crates/circuit/src/energy.rs:
crates/circuit/src/metrics.rs:
crates/circuit/src/models.rs:
