/root/repo/target/debug/deps/rap_circuit-362b0af89a7cb141.d: crates/circuit/src/lib.rs crates/circuit/src/energy.rs crates/circuit/src/metrics.rs crates/circuit/src/models.rs

/root/repo/target/debug/deps/librap_circuit-362b0af89a7cb141.rmeta: crates/circuit/src/lib.rs crates/circuit/src/energy.rs crates/circuit/src/metrics.rs crates/circuit/src/models.rs

crates/circuit/src/lib.rs:
crates/circuit/src/energy.rs:
crates/circuit/src/metrics.rs:
crates/circuit/src/models.rs:
