/root/repo/target/debug/deps/fig13-04d6d4c7c0510c82.d: crates/bench/src/bin/fig13.rs

/root/repo/target/debug/deps/libfig13-04d6d4c7c0510c82.rmeta: crates/bench/src/bin/fig13.rs

crates/bench/src/bin/fig13.rs:
