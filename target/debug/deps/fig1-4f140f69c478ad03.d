/root/repo/target/debug/deps/fig1-4f140f69c478ad03.d: crates/bench/src/bin/fig1.rs

/root/repo/target/debug/deps/libfig1-4f140f69c478ad03.rmeta: crates/bench/src/bin/fig1.rs

crates/bench/src/bin/fig1.rs:
