/root/repo/target/debug/deps/table3-fcbf38260ace0118.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/libtable3-fcbf38260ace0118.rmeta: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
