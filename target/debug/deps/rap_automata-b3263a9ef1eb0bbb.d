/root/repo/target/debug/deps/rap_automata-b3263a9ef1eb0bbb.d: crates/automata/src/lib.rs crates/automata/src/bitvec.rs crates/automata/src/glushkov.rs crates/automata/src/lnfa.rs crates/automata/src/nbva.rs crates/automata/src/nca.rs crates/automata/src/nfa.rs

/root/repo/target/debug/deps/librap_automata-b3263a9ef1eb0bbb.rmeta: crates/automata/src/lib.rs crates/automata/src/bitvec.rs crates/automata/src/glushkov.rs crates/automata/src/lnfa.rs crates/automata/src/nbva.rs crates/automata/src/nca.rs crates/automata/src/nfa.rs

crates/automata/src/lib.rs:
crates/automata/src/bitvec.rs:
crates/automata/src/glushkov.rs:
crates/automata/src/lnfa.rs:
crates/automata/src/nbva.rs:
crates/automata/src/nca.rs:
crates/automata/src/nfa.rs:
