/root/repo/target/debug/deps/end_to_end-95185feca26bbf06.d: tests/end_to_end.rs

/root/repo/target/debug/deps/libend_to_end-95185feca26bbf06.rmeta: tests/end_to_end.rs

tests/end_to_end.rs:
