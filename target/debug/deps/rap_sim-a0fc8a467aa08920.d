/root/repo/target/debug/deps/rap_sim-a0fc8a467aa08920.d: crates/sim/src/lib.rs crates/sim/src/array.rs crates/sim/src/bank.rs crates/sim/src/cost.rs crates/sim/src/replicate.rs crates/sim/src/result.rs

/root/repo/target/debug/deps/rap_sim-a0fc8a467aa08920: crates/sim/src/lib.rs crates/sim/src/array.rs crates/sim/src/bank.rs crates/sim/src/cost.rs crates/sim/src/replicate.rs crates/sim/src/result.rs

crates/sim/src/lib.rs:
crates/sim/src/array.rs:
crates/sim/src/bank.rs:
crates/sim/src/cost.rs:
crates/sim/src/replicate.rs:
crates/sim/src/result.rs:
