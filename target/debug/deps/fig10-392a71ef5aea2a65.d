/root/repo/target/debug/deps/fig10-392a71ef5aea2a65.d: crates/bench/src/bin/fig10.rs

/root/repo/target/debug/deps/libfig10-392a71ef5aea2a65.rmeta: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
