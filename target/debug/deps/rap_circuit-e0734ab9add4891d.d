/root/repo/target/debug/deps/rap_circuit-e0734ab9add4891d.d: crates/circuit/src/lib.rs crates/circuit/src/energy.rs crates/circuit/src/metrics.rs crates/circuit/src/models.rs

/root/repo/target/debug/deps/librap_circuit-e0734ab9add4891d.rmeta: crates/circuit/src/lib.rs crates/circuit/src/energy.rs crates/circuit/src/metrics.rs crates/circuit/src/models.rs

crates/circuit/src/lib.rs:
crates/circuit/src/energy.rs:
crates/circuit/src/metrics.rs:
crates/circuit/src/models.rs:
