/root/repo/target/debug/deps/rap_bench-fe77eb3d8daa8417.d: crates/bench/src/lib.rs crates/bench/src/eval.rs crates/bench/src/tables.rs

/root/repo/target/debug/deps/librap_bench-fe77eb3d8daa8417.rmeta: crates/bench/src/lib.rs crates/bench/src/eval.rs crates/bench/src/tables.rs

crates/bench/src/lib.rs:
crates/bench/src/eval.rs:
crates/bench/src/tables.rs:
