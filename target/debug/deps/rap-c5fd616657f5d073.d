/root/repo/target/debug/deps/rap-c5fd616657f5d073.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/rap-c5fd616657f5d073: crates/cli/src/main.rs

crates/cli/src/main.rs:
