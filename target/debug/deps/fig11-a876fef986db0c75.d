/root/repo/target/debug/deps/fig11-a876fef986db0c75.d: crates/bench/src/bin/fig11.rs

/root/repo/target/debug/deps/fig11-a876fef986db0c75: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
