/root/repo/target/debug/deps/rap_arch-f0bf6438abcbc84e.d: crates/arch/src/lib.rs crates/arch/src/buffers.rs crates/arch/src/cam.rs crates/arch/src/config.rs crates/arch/src/encoding.rs crates/arch/src/fcb.rs

/root/repo/target/debug/deps/librap_arch-f0bf6438abcbc84e.rmeta: crates/arch/src/lib.rs crates/arch/src/buffers.rs crates/arch/src/cam.rs crates/arch/src/config.rs crates/arch/src/encoding.rs crates/arch/src/fcb.rs

crates/arch/src/lib.rs:
crates/arch/src/buffers.rs:
crates/arch/src/cam.rs:
crates/arch/src/config.rs:
crates/arch/src/encoding.rs:
crates/arch/src/fcb.rs:
