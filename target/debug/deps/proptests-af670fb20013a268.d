/root/repo/target/debug/deps/proptests-af670fb20013a268.d: crates/automata/tests/proptests.rs

/root/repo/target/debug/deps/proptests-af670fb20013a268: crates/automata/tests/proptests.rs

crates/automata/tests/proptests.rs:
