/root/repo/target/debug/deps/differential-e36c8e42b82585e5.d: crates/sim/tests/differential.rs

/root/repo/target/debug/deps/differential-e36c8e42b82585e5: crates/sim/tests/differential.rs

crates/sim/tests/differential.rs:
