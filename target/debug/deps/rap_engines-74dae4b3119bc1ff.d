/root/repo/target/debug/deps/rap_engines-74dae4b3119bc1ff.d: crates/engines/src/lib.rs crates/engines/src/batch.rs crates/engines/src/dfa.rs crates/engines/src/interp.rs crates/engines/src/power.rs crates/engines/src/prefilter.rs crates/engines/src/shift_and.rs

/root/repo/target/debug/deps/librap_engines-74dae4b3119bc1ff.rlib: crates/engines/src/lib.rs crates/engines/src/batch.rs crates/engines/src/dfa.rs crates/engines/src/interp.rs crates/engines/src/power.rs crates/engines/src/prefilter.rs crates/engines/src/shift_and.rs

/root/repo/target/debug/deps/librap_engines-74dae4b3119bc1ff.rmeta: crates/engines/src/lib.rs crates/engines/src/batch.rs crates/engines/src/dfa.rs crates/engines/src/interp.rs crates/engines/src/power.rs crates/engines/src/prefilter.rs crates/engines/src/shift_and.rs

crates/engines/src/lib.rs:
crates/engines/src/batch.rs:
crates/engines/src/dfa.rs:
crates/engines/src/interp.rs:
crates/engines/src/power.rs:
crates/engines/src/prefilter.rs:
crates/engines/src/shift_and.rs:
