/root/repo/target/debug/deps/rap-aa7844f444459c67.d: src/lib.rs

/root/repo/target/debug/deps/librap-aa7844f444459c67.rmeta: src/lib.rs

src/lib.rs:
