/root/repo/target/debug/deps/rap_compiler-7b6f9d9bacae845b.d: crates/compiler/src/lib.rs crates/compiler/src/lnfa.rs crates/compiler/src/nbva.rs crates/compiler/src/nfa.rs

/root/repo/target/debug/deps/librap_compiler-7b6f9d9bacae845b.rmeta: crates/compiler/src/lib.rs crates/compiler/src/lnfa.rs crates/compiler/src/nbva.rs crates/compiler/src/nfa.rs

crates/compiler/src/lib.rs:
crates/compiler/src/lnfa.rs:
crates/compiler/src/nbva.rs:
crates/compiler/src/nfa.rs:
