/root/repo/target/debug/deps/all_experiments-f1975f96c184b363.d: crates/bench/src/bin/all_experiments.rs

/root/repo/target/debug/deps/all_experiments-f1975f96c184b363: crates/bench/src/bin/all_experiments.rs

crates/bench/src/bin/all_experiments.rs:
