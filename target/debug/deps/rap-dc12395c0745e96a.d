/root/repo/target/debug/deps/rap-dc12395c0745e96a.d: src/lib.rs

/root/repo/target/debug/deps/rap-dc12395c0745e96a: src/lib.rs

src/lib.rs:
