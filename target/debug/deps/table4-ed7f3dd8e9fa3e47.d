/root/repo/target/debug/deps/table4-ed7f3dd8e9fa3e47.d: crates/bench/src/bin/table4.rs

/root/repo/target/debug/deps/libtable4-ed7f3dd8e9fa3e47.rmeta: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
