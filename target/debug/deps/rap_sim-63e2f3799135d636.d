/root/repo/target/debug/deps/rap_sim-63e2f3799135d636.d: crates/sim/src/lib.rs crates/sim/src/array.rs crates/sim/src/bank.rs crates/sim/src/cost.rs crates/sim/src/replicate.rs crates/sim/src/result.rs

/root/repo/target/debug/deps/librap_sim-63e2f3799135d636.rmeta: crates/sim/src/lib.rs crates/sim/src/array.rs crates/sim/src/bank.rs crates/sim/src/cost.rs crates/sim/src/replicate.rs crates/sim/src/result.rs

crates/sim/src/lib.rs:
crates/sim/src/array.rs:
crates/sim/src/bank.rs:
crates/sim/src/cost.rs:
crates/sim/src/replicate.rs:
crates/sim/src/result.rs:
