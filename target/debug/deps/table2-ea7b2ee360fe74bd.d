/root/repo/target/debug/deps/table2-ea7b2ee360fe74bd.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/libtable2-ea7b2ee360fe74bd.rmeta: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
