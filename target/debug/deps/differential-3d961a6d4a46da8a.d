/root/repo/target/debug/deps/differential-3d961a6d4a46da8a.d: crates/sim/tests/differential.rs

/root/repo/target/debug/deps/libdifferential-3d961a6d4a46da8a.rmeta: crates/sim/tests/differential.rs

crates/sim/tests/differential.rs:
