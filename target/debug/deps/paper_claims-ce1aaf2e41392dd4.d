/root/repo/target/debug/deps/paper_claims-ce1aaf2e41392dd4.d: tests/paper_claims.rs

/root/repo/target/debug/deps/libpaper_claims-ce1aaf2e41392dd4.rmeta: tests/paper_claims.rs

tests/paper_claims.rs:
