/root/repo/target/debug/deps/rap_arch-e20de17253396f3c.d: crates/arch/src/lib.rs crates/arch/src/buffers.rs crates/arch/src/cam.rs crates/arch/src/config.rs crates/arch/src/encoding.rs crates/arch/src/fcb.rs

/root/repo/target/debug/deps/librap_arch-e20de17253396f3c.rmeta: crates/arch/src/lib.rs crates/arch/src/buffers.rs crates/arch/src/cam.rs crates/arch/src/config.rs crates/arch/src/encoding.rs crates/arch/src/fcb.rs

crates/arch/src/lib.rs:
crates/arch/src/buffers.rs:
crates/arch/src/cam.rs:
crates/arch/src/config.rs:
crates/arch/src/encoding.rs:
crates/arch/src/fcb.rs:
