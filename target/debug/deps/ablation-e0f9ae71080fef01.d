/root/repo/target/debug/deps/ablation-e0f9ae71080fef01.d: crates/bench/benches/ablation.rs

/root/repo/target/debug/deps/libablation-e0f9ae71080fef01.rmeta: crates/bench/benches/ablation.rs

crates/bench/benches/ablation.rs:
