/root/repo/target/debug/deps/proptests-08da5ad1ac358a99.d: crates/arch/tests/proptests.rs

/root/repo/target/debug/deps/libproptests-08da5ad1ac358a99.rmeta: crates/arch/tests/proptests.rs

crates/arch/tests/proptests.rs:
