/root/repo/target/debug/deps/fig13-88526bc701811798.d: crates/bench/src/bin/fig13.rs

/root/repo/target/debug/deps/fig13-88526bc701811798: crates/bench/src/bin/fig13.rs

crates/bench/src/bin/fig13.rs:
