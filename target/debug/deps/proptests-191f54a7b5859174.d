/root/repo/target/debug/deps/proptests-191f54a7b5859174.d: crates/engines/tests/proptests.rs

/root/repo/target/debug/deps/libproptests-191f54a7b5859174.rmeta: crates/engines/tests/proptests.rs

crates/engines/tests/proptests.rs:
