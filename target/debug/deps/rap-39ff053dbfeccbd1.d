/root/repo/target/debug/deps/rap-39ff053dbfeccbd1.d: src/lib.rs

/root/repo/target/debug/deps/librap-39ff053dbfeccbd1.rlib: src/lib.rs

/root/repo/target/debug/deps/librap-39ff053dbfeccbd1.rmeta: src/lib.rs

src/lib.rs:
