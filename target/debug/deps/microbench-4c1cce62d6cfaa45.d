/root/repo/target/debug/deps/microbench-4c1cce62d6cfaa45.d: crates/bench/benches/microbench.rs

/root/repo/target/debug/deps/libmicrobench-4c1cce62d6cfaa45.rmeta: crates/bench/benches/microbench.rs

crates/bench/benches/microbench.rs:
