/root/repo/target/debug/deps/rap_workloads-cd44a4482a426a18.d: crates/workloads/src/lib.rs crates/workloads/src/anmlzoo.rs crates/workloads/src/builder.rs crates/workloads/src/input.rs crates/workloads/src/suites.rs

/root/repo/target/debug/deps/librap_workloads-cd44a4482a426a18.rmeta: crates/workloads/src/lib.rs crates/workloads/src/anmlzoo.rs crates/workloads/src/builder.rs crates/workloads/src/input.rs crates/workloads/src/suites.rs

crates/workloads/src/lib.rs:
crates/workloads/src/anmlzoo.rs:
crates/workloads/src/builder.rs:
crates/workloads/src/input.rs:
crates/workloads/src/suites.rs:
