/root/repo/target/debug/deps/rap_arch-ff4c5eaf3a00547a.d: crates/arch/src/lib.rs crates/arch/src/buffers.rs crates/arch/src/cam.rs crates/arch/src/config.rs crates/arch/src/encoding.rs crates/arch/src/fcb.rs

/root/repo/target/debug/deps/librap_arch-ff4c5eaf3a00547a.rlib: crates/arch/src/lib.rs crates/arch/src/buffers.rs crates/arch/src/cam.rs crates/arch/src/config.rs crates/arch/src/encoding.rs crates/arch/src/fcb.rs

/root/repo/target/debug/deps/librap_arch-ff4c5eaf3a00547a.rmeta: crates/arch/src/lib.rs crates/arch/src/buffers.rs crates/arch/src/cam.rs crates/arch/src/config.rs crates/arch/src/encoding.rs crates/arch/src/fcb.rs

crates/arch/src/lib.rs:
crates/arch/src/buffers.rs:
crates/arch/src/cam.rs:
crates/arch/src/config.rs:
crates/arch/src/encoding.rs:
crates/arch/src/fcb.rs:
