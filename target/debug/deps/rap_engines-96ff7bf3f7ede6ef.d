/root/repo/target/debug/deps/rap_engines-96ff7bf3f7ede6ef.d: crates/engines/src/lib.rs crates/engines/src/batch.rs crates/engines/src/dfa.rs crates/engines/src/interp.rs crates/engines/src/power.rs crates/engines/src/prefilter.rs crates/engines/src/shift_and.rs

/root/repo/target/debug/deps/librap_engines-96ff7bf3f7ede6ef.rmeta: crates/engines/src/lib.rs crates/engines/src/batch.rs crates/engines/src/dfa.rs crates/engines/src/interp.rs crates/engines/src/power.rs crates/engines/src/prefilter.rs crates/engines/src/shift_and.rs

crates/engines/src/lib.rs:
crates/engines/src/batch.rs:
crates/engines/src/dfa.rs:
crates/engines/src/interp.rs:
crates/engines/src/power.rs:
crates/engines/src/prefilter.rs:
crates/engines/src/shift_and.rs:
