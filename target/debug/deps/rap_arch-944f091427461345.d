/root/repo/target/debug/deps/rap_arch-944f091427461345.d: crates/arch/src/lib.rs crates/arch/src/buffers.rs crates/arch/src/cam.rs crates/arch/src/config.rs crates/arch/src/encoding.rs crates/arch/src/fcb.rs

/root/repo/target/debug/deps/rap_arch-944f091427461345: crates/arch/src/lib.rs crates/arch/src/buffers.rs crates/arch/src/cam.rs crates/arch/src/config.rs crates/arch/src/encoding.rs crates/arch/src/fcb.rs

crates/arch/src/lib.rs:
crates/arch/src/buffers.rs:
crates/arch/src/cam.rs:
crates/arch/src/config.rs:
crates/arch/src/encoding.rs:
crates/arch/src/fcb.rs:
