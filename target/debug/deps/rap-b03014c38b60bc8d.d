/root/repo/target/debug/deps/rap-b03014c38b60bc8d.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/librap-b03014c38b60bc8d.rmeta: crates/cli/src/main.rs

crates/cli/src/main.rs:
