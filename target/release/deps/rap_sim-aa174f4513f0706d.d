/root/repo/target/release/deps/rap_sim-aa174f4513f0706d.d: crates/sim/src/lib.rs crates/sim/src/array.rs crates/sim/src/bank.rs crates/sim/src/cost.rs crates/sim/src/replicate.rs crates/sim/src/result.rs

/root/repo/target/release/deps/librap_sim-aa174f4513f0706d.rlib: crates/sim/src/lib.rs crates/sim/src/array.rs crates/sim/src/bank.rs crates/sim/src/cost.rs crates/sim/src/replicate.rs crates/sim/src/result.rs

/root/repo/target/release/deps/librap_sim-aa174f4513f0706d.rmeta: crates/sim/src/lib.rs crates/sim/src/array.rs crates/sim/src/bank.rs crates/sim/src/cost.rs crates/sim/src/replicate.rs crates/sim/src/result.rs

crates/sim/src/lib.rs:
crates/sim/src/array.rs:
crates/sim/src/bank.rs:
crates/sim/src/cost.rs:
crates/sim/src/replicate.rs:
crates/sim/src/result.rs:
