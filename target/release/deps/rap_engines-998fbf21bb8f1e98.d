/root/repo/target/release/deps/rap_engines-998fbf21bb8f1e98.d: crates/engines/src/lib.rs crates/engines/src/batch.rs crates/engines/src/dfa.rs crates/engines/src/interp.rs crates/engines/src/power.rs crates/engines/src/prefilter.rs crates/engines/src/shift_and.rs

/root/repo/target/release/deps/librap_engines-998fbf21bb8f1e98.rlib: crates/engines/src/lib.rs crates/engines/src/batch.rs crates/engines/src/dfa.rs crates/engines/src/interp.rs crates/engines/src/power.rs crates/engines/src/prefilter.rs crates/engines/src/shift_and.rs

/root/repo/target/release/deps/librap_engines-998fbf21bb8f1e98.rmeta: crates/engines/src/lib.rs crates/engines/src/batch.rs crates/engines/src/dfa.rs crates/engines/src/interp.rs crates/engines/src/power.rs crates/engines/src/prefilter.rs crates/engines/src/shift_and.rs

crates/engines/src/lib.rs:
crates/engines/src/batch.rs:
crates/engines/src/dfa.rs:
crates/engines/src/interp.rs:
crates/engines/src/power.rs:
crates/engines/src/prefilter.rs:
crates/engines/src/shift_and.rs:
