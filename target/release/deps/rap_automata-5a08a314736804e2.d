/root/repo/target/release/deps/rap_automata-5a08a314736804e2.d: crates/automata/src/lib.rs crates/automata/src/bitvec.rs crates/automata/src/glushkov.rs crates/automata/src/lnfa.rs crates/automata/src/nbva.rs crates/automata/src/nca.rs crates/automata/src/nfa.rs

/root/repo/target/release/deps/librap_automata-5a08a314736804e2.rlib: crates/automata/src/lib.rs crates/automata/src/bitvec.rs crates/automata/src/glushkov.rs crates/automata/src/lnfa.rs crates/automata/src/nbva.rs crates/automata/src/nca.rs crates/automata/src/nfa.rs

/root/repo/target/release/deps/librap_automata-5a08a314736804e2.rmeta: crates/automata/src/lib.rs crates/automata/src/bitvec.rs crates/automata/src/glushkov.rs crates/automata/src/lnfa.rs crates/automata/src/nbva.rs crates/automata/src/nca.rs crates/automata/src/nfa.rs

crates/automata/src/lib.rs:
crates/automata/src/bitvec.rs:
crates/automata/src/glushkov.rs:
crates/automata/src/lnfa.rs:
crates/automata/src/nbva.rs:
crates/automata/src/nca.rs:
crates/automata/src/nfa.rs:
