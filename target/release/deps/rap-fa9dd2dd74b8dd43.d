/root/repo/target/release/deps/rap-fa9dd2dd74b8dd43.d: src/lib.rs

/root/repo/target/release/deps/librap-fa9dd2dd74b8dd43.rlib: src/lib.rs

/root/repo/target/release/deps/librap-fa9dd2dd74b8dd43.rmeta: src/lib.rs

src/lib.rs:
