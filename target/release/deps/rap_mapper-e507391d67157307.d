/root/repo/target/release/deps/rap_mapper-e507391d67157307.d: crates/mapper/src/lib.rs crates/mapper/src/binning.rs crates/mapper/src/pack.rs crates/mapper/src/plan.rs

/root/repo/target/release/deps/librap_mapper-e507391d67157307.rlib: crates/mapper/src/lib.rs crates/mapper/src/binning.rs crates/mapper/src/pack.rs crates/mapper/src/plan.rs

/root/repo/target/release/deps/librap_mapper-e507391d67157307.rmeta: crates/mapper/src/lib.rs crates/mapper/src/binning.rs crates/mapper/src/pack.rs crates/mapper/src/plan.rs

crates/mapper/src/lib.rs:
crates/mapper/src/binning.rs:
crates/mapper/src/pack.rs:
crates/mapper/src/plan.rs:
