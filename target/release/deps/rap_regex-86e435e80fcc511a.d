/root/repo/target/release/deps/rap_regex-86e435e80fcc511a.d: crates/regex/src/lib.rs crates/regex/src/analysis.rs crates/regex/src/ast.rs crates/regex/src/charclass.rs crates/regex/src/parser.rs crates/regex/src/rewrite.rs

/root/repo/target/release/deps/librap_regex-86e435e80fcc511a.rlib: crates/regex/src/lib.rs crates/regex/src/analysis.rs crates/regex/src/ast.rs crates/regex/src/charclass.rs crates/regex/src/parser.rs crates/regex/src/rewrite.rs

/root/repo/target/release/deps/librap_regex-86e435e80fcc511a.rmeta: crates/regex/src/lib.rs crates/regex/src/analysis.rs crates/regex/src/ast.rs crates/regex/src/charclass.rs crates/regex/src/parser.rs crates/regex/src/rewrite.rs

crates/regex/src/lib.rs:
crates/regex/src/analysis.rs:
crates/regex/src/ast.rs:
crates/regex/src/charclass.rs:
crates/regex/src/parser.rs:
crates/regex/src/rewrite.rs:
