/root/repo/target/release/deps/rap_circuit-5f3e986a58402f0a.d: crates/circuit/src/lib.rs crates/circuit/src/energy.rs crates/circuit/src/metrics.rs crates/circuit/src/models.rs

/root/repo/target/release/deps/librap_circuit-5f3e986a58402f0a.rlib: crates/circuit/src/lib.rs crates/circuit/src/energy.rs crates/circuit/src/metrics.rs crates/circuit/src/models.rs

/root/repo/target/release/deps/librap_circuit-5f3e986a58402f0a.rmeta: crates/circuit/src/lib.rs crates/circuit/src/energy.rs crates/circuit/src/metrics.rs crates/circuit/src/models.rs

crates/circuit/src/lib.rs:
crates/circuit/src/energy.rs:
crates/circuit/src/metrics.rs:
crates/circuit/src/models.rs:
