/root/repo/target/release/deps/rap_workloads-903cd3732f5c80ff.d: crates/workloads/src/lib.rs crates/workloads/src/anmlzoo.rs crates/workloads/src/builder.rs crates/workloads/src/input.rs crates/workloads/src/suites.rs

/root/repo/target/release/deps/librap_workloads-903cd3732f5c80ff.rlib: crates/workloads/src/lib.rs crates/workloads/src/anmlzoo.rs crates/workloads/src/builder.rs crates/workloads/src/input.rs crates/workloads/src/suites.rs

/root/repo/target/release/deps/librap_workloads-903cd3732f5c80ff.rmeta: crates/workloads/src/lib.rs crates/workloads/src/anmlzoo.rs crates/workloads/src/builder.rs crates/workloads/src/input.rs crates/workloads/src/suites.rs

crates/workloads/src/lib.rs:
crates/workloads/src/anmlzoo.rs:
crates/workloads/src/builder.rs:
crates/workloads/src/input.rs:
crates/workloads/src/suites.rs:
