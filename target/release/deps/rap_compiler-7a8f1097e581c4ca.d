/root/repo/target/release/deps/rap_compiler-7a8f1097e581c4ca.d: crates/compiler/src/lib.rs crates/compiler/src/lnfa.rs crates/compiler/src/nbva.rs crates/compiler/src/nfa.rs

/root/repo/target/release/deps/librap_compiler-7a8f1097e581c4ca.rlib: crates/compiler/src/lib.rs crates/compiler/src/lnfa.rs crates/compiler/src/nbva.rs crates/compiler/src/nfa.rs

/root/repo/target/release/deps/librap_compiler-7a8f1097e581c4ca.rmeta: crates/compiler/src/lib.rs crates/compiler/src/lnfa.rs crates/compiler/src/nbva.rs crates/compiler/src/nfa.rs

crates/compiler/src/lib.rs:
crates/compiler/src/lnfa.rs:
crates/compiler/src/nbva.rs:
crates/compiler/src/nfa.rs:
