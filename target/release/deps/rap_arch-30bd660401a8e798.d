/root/repo/target/release/deps/rap_arch-30bd660401a8e798.d: crates/arch/src/lib.rs crates/arch/src/buffers.rs crates/arch/src/cam.rs crates/arch/src/config.rs crates/arch/src/encoding.rs crates/arch/src/fcb.rs

/root/repo/target/release/deps/librap_arch-30bd660401a8e798.rlib: crates/arch/src/lib.rs crates/arch/src/buffers.rs crates/arch/src/cam.rs crates/arch/src/config.rs crates/arch/src/encoding.rs crates/arch/src/fcb.rs

/root/repo/target/release/deps/librap_arch-30bd660401a8e798.rmeta: crates/arch/src/lib.rs crates/arch/src/buffers.rs crates/arch/src/cam.rs crates/arch/src/config.rs crates/arch/src/encoding.rs crates/arch/src/fcb.rs

crates/arch/src/lib.rs:
crates/arch/src/buffers.rs:
crates/arch/src/cam.rs:
crates/arch/src/config.rs:
crates/arch/src/encoding.rs:
crates/arch/src/fcb.rs:
