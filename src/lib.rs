//! # RAP — Reconfigurable Automata Processor (reproduction)
//!
//! A from-scratch Rust reproduction of *RAP: Reconfigurable Automata
//! Processor* (ISCA 2025): the first reconfigurable in-memory automata
//! processor, supporting NFA, NBVA (nondeterministic bit vector automata)
//! and LNFA (linear NFA) execution modes through reconfiguration of the
//! same 8T-CAM/FCB fabric, plus the regex-to-hardware compiler that picks
//! the best mode per pattern.
//!
//! This crate is the facade: it re-exports the layered workspace crates
//! and offers [`Rap`], a one-stop engine that compiles a pattern set, maps
//! it onto arrays, and runs input streams through the cycle-accurate
//! simulator.
//!
//! ```
//! use rap::Rap;
//!
//! // Virus-scanner flavored patterns: a big bounded gap (NBVA mode), a
//! // literal signature (LNFA mode), and a general regex (NFA mode).
//! let rap = Rap::compile(&[
//!     "EVIL.{24,96}PAYLOAD".to_string(),
//!     "deadbeef".to_string(),
//!     "GET /.*HTTP".to_string(),
//! ])?;
//! let report = rap.scan(b"xx deadbeef GET /index HTTP yy");
//! assert_eq!(report.matches.len(), 2);
//! println!("energy: {:.3} uJ over {} cycles", report.metrics.energy_uj, report.metrics.cycles);
//! # Ok::<(), rap::SimError>(())
//! ```
//!
//! Layered crates:
//!
//! | crate | contents |
//! |---|---|
//! | [`regex`] | PCRE-subset parser, character classes, rewriters (§2.1, §4) |
//! | [`automata`] | Glushkov NFA, NBVA, LNFA models + reference executors (§2.1) |
//! | [`circuit`] | 28nm circuit cost models of Table 1 |
//! | [`arch`] | tile/array/bank geometry, CC encodings, CAM & crossbar models (§3) |
//! | [`compiler`] | the Fig. 9 decision graph and per-mode compilation (§4) |
//! | [`mapper`] | greedy array packing and multi-LNFA binning (§4.3) |
//! | [`sim`] | cycle-accurate RAP + CA/CAMA/BVAP baselines (§5) |
//! | [`diag`] | shared diagnostic vocabulary (severity, location, report, JSON) |
//! | [`verify`] | static legality verifier for plans (rules V001–V012) |
//! | [`analyze`] | dataflow static analyzer over compiled IRs (rules A001–A011) + pruning |
//! | [`bound`] | abstract-interpretation worst-case bounds over mapped plans (rules B001–B008) |
//! | [`admit`] | static multi-tenant interference analyzer with certified co-residency admission (rules S001–S008) |
//! | [`serve`] | multi-tenant streaming scan service on the admitted-composition fabric (rules R001–R004) |
//! | [`telemetry`] | metrics registry, span timing, cycle-sampled simulator probes, JSONL/Prometheus export |
//! | [`pipeline`] | typed parse → compile → map → verify → simulate stages, plan cache, grid driver |
//! | [`workloads`] | synthetic stand-ins for the seven benchmark suites (§5.1) |
//! | [`engines`] | software matcher baselines (Hyperscan/HybridSA stand-ins, §5.5) |

pub use rap_admit as admit;
pub use rap_analyze as analyze;
pub use rap_arch as arch;
pub use rap_automata as automata;
pub use rap_bound as bound;
pub use rap_circuit as circuit;
pub use rap_compiler as compiler;
pub use rap_diag as diag;
pub use rap_engines as engines;
pub use rap_mapper as mapper;
pub use rap_pipeline as pipeline;
pub use rap_regex as regex;
pub use rap_serve as serve;
pub use rap_sim as sim;
pub use rap_telemetry as telemetry;
pub use rap_verify as verify;
pub use rap_workloads as workloads;

pub use rap_circuit::{Machine, Metrics};
pub use rap_compiler::Mode;
pub use rap_pipeline::{PatternSet, VerifiedPlan};
pub use rap_sim::{MatchEvent, RunResult, SimError, Simulator};

use rap_compiler::Compiled;

/// A compiled-and-mapped RAP instance, ready to scan input streams.
///
/// `Rap` holds a [`VerifiedPlan`] — the pipeline's stage-4 artifact, whose
/// existence proves the placement passed every static legality rule;
/// [`Rap::scan`] runs the cycle-accurate simulator and returns both the
/// matches and the modeled hardware metrics.
#[derive(Clone, Debug)]
pub struct Rap {
    plan: VerifiedPlan,
}

/// The outcome of one [`Rap::scan`].
#[derive(Clone, Debug)]
pub struct ScanReport {
    /// Matches as `(pattern index, end offset)`, sorted and deduplicated.
    pub matches: Vec<MatchEvent>,
    /// Modeled hardware metrics (cycles, energy, area, throughput, power).
    pub metrics: Metrics,
    /// Energy breakdown by category.
    pub energy: rap_circuit::EnergyMeter,
}

impl Rap {
    /// Compiles a pattern set with the full decision graph and paper-default
    /// parameters.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Compile`] when a pattern fails to parse or
    /// exceeds one array's capacity.
    pub fn compile(patterns: &[String]) -> Result<Rap, SimError> {
        Rap::with_simulator(Simulator::new(Machine::Rap), patterns)
    }

    /// Compiles with a custom [`Simulator`] (machine choice, BV depth, bin
    /// size, unfold threshold, …), running the typed pipeline chain:
    /// parse → compile → map → verify. The returned instance holds a
    /// [`VerifiedPlan`], so every scan runs a provably legal placement.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Compile`] when a pattern fails to parse or
    /// compile, and [`SimError::IllegalMapping`] when the placement
    /// violates a hardware legality rule.
    pub fn with_simulator(simulator: Simulator, patterns: &[String]) -> Result<Rap, SimError> {
        let pats = PatternSet::parse(patterns).map_err(SimError::from)?;
        let plan = pipeline::build_plan_sim(&simulator, &pats)?;
        Ok(Rap { plan })
    }

    /// Compiles through a shared [`pipeline::Pipeline`], so the plan
    /// lands in (and can be recalled from) its caches — including the
    /// persistent disk store when one is attached
    /// ([`pipeline::Pipeline::with_store`]): a pattern set compiled by an
    /// earlier process loads from disk instead of recompiling.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Compile`] when a pattern fails to parse or
    /// compile, and [`SimError::IllegalMapping`] when the placement
    /// violates a hardware legality rule.
    pub fn with_pipeline(
        pipe: &pipeline::Pipeline,
        simulator: &Simulator,
        patterns: &[String],
    ) -> Result<Rap, SimError> {
        let pats = PatternSet::parse(patterns).map_err(SimError::from)?;
        let plan = pipe.plan(simulator, &pats, None).map_err(SimError::from)?;
        Ok(Rap {
            plan: std::sync::Arc::unwrap_or_clone(plan),
        })
    }

    /// The verified plan (compile product + placement + advisories).
    pub fn plan(&self) -> &VerifiedPlan {
        &self.plan
    }

    /// The execution mode each pattern compiled to.
    pub fn modes(&self) -> Vec<Mode> {
        self.plan
            .compiled()
            .images()
            .iter()
            .map(Compiled::mode)
            .collect()
    }

    /// Total hardware states (STEs / chain positions) allocated.
    pub fn state_count(&self) -> u64 {
        self.plan.compiled().state_count()
    }

    /// Tiles allocated across arrays.
    pub fn tiles_used(&self) -> u32 {
        self.plan.mapping().tiles_used()
    }

    /// Column utilization of the allocated tiles.
    pub fn utilization(&self) -> f64 {
        self.plan.mapping().utilization()
    }

    /// Non-fatal verifier findings (warnings/infos) for the plan; an empty
    /// report means the plan is provably legal with no advisories. Plans
    /// with legality *errors* never construct — [`Rap::with_simulator`]
    /// rejects them with [`SimError::IllegalMapping`].
    pub fn lint(&self) -> verify::Report {
        self.plan.advisories().clone()
    }

    /// Scans an input stream through the cycle-accurate simulator.
    pub fn scan(&self, input: &[u8]) -> ScanReport {
        let result = self.plan.simulate(input);
        ScanReport {
            matches: result.matches,
            metrics: result.metrics,
            energy: result.energy,
        }
    }

    /// Scans through the §3.3 bank buffer hierarchy (ping-pong input pages,
    /// per-array FIFOs, output buffers with host interrupts), returning
    /// buffer statistics alongside the report.
    pub fn scan_streaming(&self, input: &[u8]) -> (ScanReport, sim::BankStats) {
        let (result, stats) = self.plan.simulate_streaming(input);
        (
            ScanReport {
                matches: result.matches,
                metrics: result.metrics,
                energy: result.energy,
            },
            stats,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facade_end_to_end() {
        let rap = Rap::compile(&[
            "ab{20,60}c".to_string(),
            "hello world".to_string(),
            "x.*yz".to_string(),
        ])
        .expect("compiles");
        assert_eq!(rap.modes(), vec![Mode::Nbva, Mode::Lnfa, Mode::Nfa]);
        assert!(rap.state_count() > 0);
        assert!(rap.tiles_used() > 0);
        assert!(rap.lint().is_empty(), "{}", rap.lint());
        let report = rap.scan(b"hello world xqqyz");
        assert_eq!(report.matches.len(), 2);
        assert!(report.metrics.energy_uj > 0.0);
    }

    #[test]
    fn facade_propagates_errors() {
        let err = Rap::compile(&["(oops".to_string()]).expect_err("parse error");
        assert!(matches!(err, SimError::Compile { pattern: 0, .. }));
    }

    #[test]
    fn facade_compiles_through_shared_pipeline_store() {
        let dir = std::env::temp_dir().join(format!(
            "rap-facade-store-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let spec = pipeline::BenchConfig {
            patterns_per_suite: 2,
            input_len: 64,
            match_rate: 0.02,
            seed: 1,
        };
        let patterns = vec!["hello world".to_string(), "x.*yz".to_string()];
        let sim = Simulator::new(Machine::Rap);

        let cold_pipe = pipeline::Pipeline::new(spec)
            .with_store(pipeline::StoreConfig::at(&dir))
            .expect("store opens");
        let cold = Rap::with_pipeline(&cold_pipe, &sim, &patterns).expect("compiles");

        // A fresh pipeline over the same directory recalls the plan from
        // disk: zero compiles, identical scan results.
        let warm_pipe = pipeline::Pipeline::new(spec)
            .with_store(pipeline::StoreConfig::at(&dir))
            .expect("store opens");
        let warm = Rap::with_pipeline(&warm_pipe, &sim, &patterns).expect("loads");
        assert_eq!(warm_pipe.report().patterns_compiled, 0);
        let input = b"hello world xqqyz";
        assert_eq!(
            warm.scan(input).matches,
            cold.scan(input).matches,
            "disk-loaded plan must scan identically"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
