//! Virus scanning with large bounded gaps: shows the NBVA mode's
//! compression of `sig1 .{m,n} sig2` signatures and the BV-depth
//! trade-off of Fig. 10(a).
//!
//! Run with: `cargo run --release --example virus_scan`

use rap::compiler::{Compiled, Compiler, CompilerConfig, Mode};
use rap::workloads::{generate_input, generate_patterns, Suite};
use rap::{Machine, Simulator};

fn main() -> Result<(), rap::SimError> {
    // A hand-written ClamAV-style signature: two literal fragments with a
    // large bounded gap. Unfolded it needs >520 states; as an NBVA it
    // needs 13 control states and one 512-bit vector.
    let signature = "4d5a9000.{64,512}50450000";
    let re = rap::regex::parse(signature).expect("parses");
    let compiler = Compiler::new(CompilerConfig::default());
    let compiled = compiler.compile(&re).expect("compiles");
    assert_eq!(compiled.mode(), Mode::Nbva);
    println!("signature: {signature}");
    println!("  unfolded NFA states : {}", re.unfolded_size());
    println!("  NBVA control states : {}", compiled.state_count());
    if let Compiled::Nbva(img) = &compiled {
        println!(
            "  bit-vector storage  : {} bits in {} vectors",
            img.bv_bits(),
            img.bv_states()
        );
    }

    // A ClamAV-like suite, swept over the BV depth (the Fig. 10(a) knob).
    let patterns = generate_patterns(Suite::ClamAv, 120, 7);
    let stream = generate_input(&patterns, 100_000, 0.01, 7);
    let regexes: Vec<_> = patterns
        .iter()
        .map(|p| rap::regex::parse(p).expect("parses"))
        .collect();

    println!(
        "\nClamAV-like suite ({} signatures), BV depth sweep:",
        patterns.len()
    );
    println!(
        "{:>6} {:>10} {:>10} {:>12} {:>8}",
        "depth", "energy uJ", "area mm2", "thpt Gch/s", "stalls"
    );
    for depth in [4u32, 8, 16, 32] {
        let sim = Simulator::new(Machine::Rap).with_bv_depth(depth);
        let result = sim.run(&regexes, &stream)?;
        println!(
            "{:>6} {:>10.2} {:>10.3} {:>12.2} {:>8}",
            depth,
            result.metrics.energy_uj,
            result.metrics.area_mm2,
            result.metrics.throughput_gchps(),
            result.stall_cycles,
        );
    }
    println!("\nDeeper vectors compress better (less area/energy) but each");
    println!("bit-vector-processing phase stalls the array for `depth` cycles");
    println!("— the trade-off the paper's design-space exploration navigates.");
    Ok(())
}
