//! Protein motif search (PROSITE-style): LNFA mode with Shift-And
//! execution, multi-LNFA binning, and a cross-check against the software
//! Shift-And engine.
//!
//! Run with: `cargo run --release --example protein_motifs`

use rap::engines::{Engine, ShiftAndEngine};
use rap::workloads::{generate_input, generate_patterns, Suite};
use rap::{Machine, Rap, Simulator};

fn main() -> Result<(), rap::SimError> {
    // A real PROSITE-flavored motif: Zinc finger C2H2-like fragment.
    let motif = "C[ILVF].C".to_string();
    let rap = Rap::compile(std::slice::from_ref(&motif))?;
    println!("motif {motif:10} compiles to {:?}", rap.modes()[0]);
    let hits = rap.scan(b"MKCVACHTGEKP").matches;
    println!(
        "  hits in MKCVACHTGEKP: {:?}\n",
        hits.iter().map(|m| m.end).collect::<Vec<_>>()
    );

    // A Prosite-like suite: LNFA-majority, executed with Shift-And in the
    // active vector; bins concentrate initial states so idle tiles are
    // power-gated (§3.2).
    let patterns = generate_patterns(Suite::Prosite, 200, 11);
    let proteins = generate_input(&patterns, 150_000, 0.02, 11);
    let regexes: Vec<_> = patterns
        .iter()
        .map(|p| rap::regex::parse(p).expect("parses"))
        .collect();

    println!(
        "Prosite-like suite ({} motifs), bin-size sweep:",
        patterns.len()
    );
    println!("{:>5} {:>10} {:>10}", "bin", "energy uJ", "area mm2");
    for bin in [1u32, 4, 16, 32] {
        let sim = Simulator::new(Machine::Rap).with_bin_size(bin);
        let result = sim.run(&regexes, &proteins)?;
        println!(
            "{:>5} {:>10.2} {:>10.3}",
            bin, result.metrics.energy_uj, result.metrics.area_mm2
        );
    }

    // Consistency check against the software Shift-And engine (the same
    // algorithm Hyperscan and HybridSA build on).
    let sim = Simulator::new(Machine::Rap);
    let hardware = sim.run(&regexes, &proteins)?;
    let software = ShiftAndEngine::new(&regexes);
    let sw_hits = software.scan(&proteins);
    assert_eq!(hardware.matches.len(), sw_hits.len());
    assert!(hardware
        .matches
        .iter()
        .zip(sw_hits.iter())
        .all(|(h, s)| h.pattern == s.pattern && h.end == s.end));
    println!(
        "\nhardware LNFA mode and software Shift-And agree on {} matches",
        sw_hits.len()
    );
    Ok(())
}
