//! Streaming through the bank buffer hierarchy (§3.3) and multi-bank
//! workload sharing (§5.5): watch the FIFOs absorb bit-vector stalls, the
//! output buffer raise host interrupts, and replication recover the
//! throughput an NBVA-heavy workload loses.
//!
//! Run with: `cargo run --release --example streaming`

use rap::sim::{simulate_replicated, Simulator};
use rap::workloads::{generate_input, generate_patterns, Suite};
use rap::Machine;

fn main() -> Result<(), rap::SimError> {
    let patterns = generate_patterns(Suite::ClamAv, 80, 99);
    let stream = generate_input(&patterns, 120_000, 0.03, 99);
    let regexes: Vec<_> = patterns
        .iter()
        .map(|p| rap::regex::parse(p).expect("parses"))
        .collect();

    let sim = Simulator::new(Machine::Rap).with_bv_depth(Suite::ClamAv.chosen_bv_depth());
    let compiled = sim.compile(&regexes)?;
    let mapping = sim.map(&compiled);

    // Batch reference.
    let batch = sim.simulate(&compiled, &mapping, &stream);
    println!(
        "batch     : {} matches, {} cycles, {:.2} Gch/s",
        batch.matches.len(),
        batch.metrics.cycles,
        batch.metrics.throughput_gchps()
    );

    // Cycle-interleaved streaming through the buffers.
    let (streamed, stats) = sim.simulate_streaming(&compiled, &mapping, &stream);
    assert_eq!(streamed.matches, batch.matches);
    println!(
        "streaming : {} matches, {} cycles, {:.2} Gch/s",
        streamed.matches.len(),
        streamed.metrics.cycles,
        streamed.metrics.throughput_gchps()
    );
    println!("  per-array stalls   : {:?}", stats.stall_cycles);
    println!("  per-array starved  : {:?}", stats.starved_cycles);
    println!("  max consumed skew  : {} bytes", stats.max_skew);
    println!("  output interrupts  : {}", stats.output_interrupts);

    // §5.5: replicate until the workload sustains ≥ 2 Gch/s. Sharding
    // needs bounded match spans, so demo it on the NBVA-decided subset
    // (`.*`-style patterns have unbounded span and block sharding).
    let decider = rap::compiler::Compiler::new(sim.compiler);
    let nbva_only: Vec<_> = regexes
        .iter()
        .filter(|re| decider.decide(re) == rap::Mode::Nbva)
        .cloned()
        .collect();
    let compiled = sim.compile(&nbva_only)?;
    let mapping = sim.map(&compiled);
    let base = sim.simulate(&compiled, &mapping, &stream);
    let rep = simulate_replicated(&compiled, &mapping, &stream, Machine::Rap, 2.0, 8);
    assert_eq!(rep.result.matches, base.matches);
    println!(
        "replicated: {} banks (overlap {} B): {:.2} -> {:.2} Gch/s at {:.3} -> {:.3} mm2",
        rep.replicas,
        rep.overlap,
        base.metrics.throughput_gchps(),
        rep.result.metrics.throughput_gchps(),
        base.metrics.area_mm2,
        rep.result.metrics.area_mm2
    );
    Ok(())
}
