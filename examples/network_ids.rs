//! Network intrusion detection: run a Snort-like ruleset over synthetic
//! traffic on all four automata processors and compare the modeled
//! hardware costs (the paper's motivating deployment, §1).
//!
//! Run with: `cargo run --release --example network_ids`

use rap::workloads::{generate_input, generate_patterns, Suite};
use rap::{Machine, Simulator};

fn main() -> Result<(), rap::SimError> {
    let patterns = generate_patterns(Suite::Snort, 150, 2024);
    let traffic = generate_input(&patterns, 200_000, 0.02, 2024);
    let regexes: Vec<_> = patterns
        .iter()
        .map(|p| rap::regex::parse(p).expect("generated patterns parse"))
        .collect();

    println!(
        "Snort-like ruleset: {} patterns over {} bytes of traffic\n",
        patterns.len(),
        traffic.len()
    );
    println!(
        "{:>6} {:>10} {:>10} {:>12} {:>12} {:>10} {:>8}",
        "machine", "energy uJ", "area mm2", "thpt Gch/s", "eff Gch/s/W", "power W", "matches"
    );

    let mut reference: Option<Vec<rap::MatchEvent>> = None;
    for machine in Machine::all() {
        let sim = Simulator::new(machine)
            .with_bv_depth(Suite::Snort.chosen_bv_depth())
            .with_bin_size(Suite::Snort.chosen_bin_size());
        let result = sim.run(&regexes, &traffic)?;
        println!(
            "{:>6} {:>10.2} {:>10.3} {:>12.2} {:>12.2} {:>10.2} {:>8}",
            machine.name(),
            result.metrics.energy_uj,
            result.metrics.area_mm2,
            result.metrics.throughput_gchps(),
            result.metrics.energy_efficiency(),
            result.metrics.power_w(),
            result.matches.len(),
        );
        // All machines must agree on the match set (§5.2 consistency).
        match &reference {
            None => reference = Some(result.matches),
            Some(expect) => assert_eq!(&result.matches, expect, "{machine} diverged"),
        }
    }

    println!("\nAll four machines reported identical match sets.");
    println!("Edge budget: at ~2 W, RAP-class hardware fits an IoT gateway's");
    println!("power envelope where a CPU-based IDS (~240 W socket) cannot.");
    Ok(())
}
