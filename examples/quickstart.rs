//! Quickstart: compile a small mixed pattern set, scan a stream, inspect
//! the modes, matches, and modeled hardware costs.
//!
//! Run with: `cargo run --release --example quickstart`

use rap::{Machine, Rap, Simulator};

fn main() -> Result<(), rap::SimError> {
    // Three patterns, one per RAP execution mode:
    //  - a bounded repetition too large to unfold → NBVA (bit vectors),
    //  - a plain literal → LNFA (Shift-And in the active vector),
    //  - a Kleene-star pattern → basic NFA.
    let patterns = vec![
        "fee.{30,90}fum".to_string(),
        "magic bytes".to_string(),
        "begin.*end".to_string(),
    ];
    let rap = Rap::compile(&patterns)?;

    println!("pattern -> mode");
    for (p, m) in patterns.iter().zip(rap.modes()) {
        println!("  {p:24} {m}");
    }
    println!(
        "hardware image: {} states on {} tiles ({:.0}% column utilization)",
        rap.state_count(),
        rap.tiles_used(),
        rap.utilization() * 100.0
    );

    let mut input = b"magic bytes ... begin stuff end ... fee ".to_vec();
    input.extend(std::iter::repeat_n(b'x', 40));
    input.extend_from_slice(b"fum tail");
    let report = rap.scan(&input);

    println!("\nmatches (pattern, end offset):");
    for m in &report.matches {
        println!("  #{} ends at byte {}", m.pattern, m.end);
    }
    println!(
        "\n{} cycles at {:.2} GHz -> {:.3} Gch/s, {:.4} uJ, {:.3} mm2",
        report.metrics.cycles,
        report.metrics.clock_hz / 1e9,
        report.metrics.throughput_gchps(),
        report.metrics.energy_uj,
        report.metrics.area_mm2,
    );
    println!("\nenergy breakdown:");
    for (category, pj) in report.energy.iter() {
        println!("  {category:13} {pj:10.1} pJ");
    }

    // The same pattern set on a baseline machine for comparison.
    let cama = Simulator::new(Machine::Cama);
    let regexes: Vec<_> = patterns
        .iter()
        .map(|p| rap::regex::parse(p).expect("parses"))
        .collect();
    let baseline = cama.run(&regexes, &input)?;
    println!(
        "\nCAMA baseline (everything unfolded to NFA): {:.4} uJ, {:.3} mm2",
        baseline.metrics.energy_uj, baseline.metrics.area_mm2
    );
    Ok(())
}
